(* The Simkit.Audit checkers themselves: they must accept clean traces and
   flag synthetically corrupted ones. *)

module T = Simkit.Trace
module A = Simkit.Audit

let mk events =
  let tr = T.create () in
  List.iter (T.record tr) events;
  tr

let test_well_formed_accepts () =
  let tr =
    mk
      [
        T.Stepped { pid = 0; round = 0 };
        T.Worked { pid = 0; round = 0; unit_id = 0 };
        T.Sent { src = 0; dst = 1; round = 1; what = "(1)" };
        T.Terminated_ev { pid = 0; round = 2 };
        T.Crashed_ev { pid = 1; round = 3 };
      ]
  in
  Alcotest.(check int) "clean" 0 (List.length (A.well_formed tr))

let test_well_formed_flags_zombie () =
  let tr =
    mk
      [
        T.Crashed_ev { pid = 0; round = 1 };
        T.Worked { pid = 0; round = 2; unit_id = 3 };
      ]
  in
  Alcotest.(check int) "zombie work flagged" 1 (List.length (A.well_formed tr))

let test_well_formed_flags_double_retire () =
  let tr =
    mk
      [
        T.Terminated_ev { pid = 0; round = 1 };
        T.Crashed_ev { pid = 0; round = 2 };
      ]
  in
  Alcotest.(check int) "double retirement flagged" 1 (List.length (A.well_formed tr))

let test_well_formed_flags_time_travel () =
  let tr =
    mk
      [
        T.Stepped { pid = 0; round = 5 };
        T.Stepped { pid = 1; round = 3 };
      ]
  in
  Alcotest.(check int) "backwards trace flagged" 1 (List.length (A.well_formed tr))

let test_one_active_flags_pair () =
  let tr =
    mk
      [
        T.Worked { pid = 0; round = 4; unit_id = 0 };
        T.Worked { pid = 1; round = 4; unit_id = 1 };
      ]
  in
  Alcotest.(check int) "two actives flagged" 1
    (List.length (A.at_most_one_active tr))

let test_one_active_respects_passive () =
  let tr =
    mk
      [
        T.Worked { pid = 0; round = 4; unit_id = 0 };
        T.Sent { src = 2; dst = 0; round = 4; what = "go_ahead" };
      ]
  in
  Alcotest.(check int) "passive sender tolerated" 0
    (List.length (A.at_most_one_active ~passive_msg:(( = ) "go_ahead") tr));
  Alcotest.(check int) "without the classifier it is flagged" 1
    (List.length (A.at_most_one_active tr))

let test_monotone_work () =
  let good =
    mk
      [
        T.Worked { pid = 0; round = 0; unit_id = 0 };
        T.Worked { pid = 0; round = 1; unit_id = 1 };
        T.Worked { pid = 1; round = 9; unit_id = 1 } (* redo: fine *);
        T.Worked { pid = 1; round = 10; unit_id = 2 };
      ]
  in
  Alcotest.(check int) "monotone accepted" 0 (List.length (A.work_is_monotone good));
  let bad =
    mk
      [
        T.Worked { pid = 0; round = 0; unit_id = 5 };
        T.Worked { pid = 1; round = 3; unit_id = 2 } (* first perf, below 5 *);
      ]
  in
  Alcotest.(check int) "regression flagged" 1 (List.length (A.work_is_monotone bad))

let test_real_traces_clean () =
  (* every sequential protocol's real trace passes all three checkers *)
  let spec = Doall.Spec.make ~n:24 ~t:9 in
  List.iter
    (fun (proto, passive) ->
      let trace = Simkit.Trace.create () in
      let fault = Simkit.Fault.crash_silently_at [ (0, 9); (3, 60) ] in
      ignore (Doall.Runner.run ~fault ~trace spec proto);
      Alcotest.(check int) "well formed" 0 (List.length (A.well_formed trace));
      Alcotest.(check int) "one active" 0
        (List.length (A.at_most_one_active ~passive_msg:passive trace));
      Alcotest.(check int) "monotone" 0 (List.length (A.work_is_monotone trace)))
    [
      (Doall.Protocol_a.protocol, fun _ -> false);
      (Doall.Protocol_b.protocol, Helpers.b_passive);
      (Doall.Protocol_c.protocol, Helpers.c_passive);
      (Doall.Baseline_checkpoint.protocol ~period:2, fun _ -> false);
    ]

let suite =
  [
    Alcotest.test_case "well-formed: accepts clean" `Quick test_well_formed_accepts;
    Alcotest.test_case "well-formed: zombie action" `Quick test_well_formed_flags_zombie;
    Alcotest.test_case "well-formed: double retirement" `Quick test_well_formed_flags_double_retire;
    Alcotest.test_case "well-formed: time travel" `Quick test_well_formed_flags_time_travel;
    Alcotest.test_case "one-active: flags a pair" `Quick test_one_active_flags_pair;
    Alcotest.test_case "one-active: passive classifier" `Quick test_one_active_respects_passive;
    Alcotest.test_case "monotone work" `Quick test_monotone_work;
    Alcotest.test_case "real traces audit clean" `Quick test_real_traces_clean;
  ]
