(* Protocol D: correctness across schedules, Theorem 4.1's failure-free and
   f-failure bounds, and the revert-to-Protocol-A path. *)

module Prng = Dhw_util.Prng
module Bounds = Doall.Bounds

let proto = Doall.Protocol_d.protocol

let exercise name spec fault =
  let report = Helpers.run ~fault spec proto in
  Helpers.check_correct name report;
  report

let test_failure_free_exact () =
  let spec = Helpers.spec ~n:100 ~t:10 in
  let report = exercise "ff" spec Simkit.Fault.none in
  let m = Helpers.metrics report in
  Alcotest.(check int) "exactly n work" 100 (Simkit.Metrics.work m);
  (* rounds metric = highest 0-based round index: work occupies rounds
     0..n/t-1 and the done broadcast lands on round n/t *)
  Alcotest.(check int) "last activity at round n/t" 10 (Simkit.Metrics.rounds m);
  (* two broadcast waves of t(t-1) messages = 2t² in the paper's counting *)
  Alcotest.(check int) "2 t (t-1) messages" (2 * 10 * 9) (Simkit.Metrics.messages m)

let test_failure_free_shapes () =
  List.iter
    (fun (n, t) ->
      let spec = Helpers.spec ~n ~t in
      let report = exercise (Printf.sprintf "ff n=%d t=%d" n t) spec Simkit.Fault.none in
      let m = Helpers.metrics report in
      Alcotest.(check int) "work = n" n (Simkit.Metrics.work m);
      let expect = Dhw_util.Intmath.ceil_div n t in
      Alcotest.(check int) "last activity at round ceil(n/t)" expect
        (Simkit.Metrics.rounds m))
    [ (100, 10); (1, 1); (7, 3); (12, 12); (5, 9); (1000, 25) ]

let check_thm41 name spec (report : Doall.Runner.report) ~reverted =
  let m = Helpers.metrics report in
  let f = Doall.Runner.crashed report in
  let work_bound =
    if reverted then Bounds.d_work_revert spec else Bounds.d_work spec
  in
  let msg_bound =
    if reverted then Bounds.d_msgs_revert spec ~f else Bounds.d_msgs spec ~f
  in
  let round_bound =
    if reverted then Bounds.d_rounds_revert spec ~f else Bounds.d_rounds spec ~f
  in
  let chk what v bound =
    if v > bound then Alcotest.failf "%s: %s %d exceeds bound %d" name what v bound
  in
  chk "work" (Simkit.Metrics.work m) work_bound;
  chk "messages" (Simkit.Metrics.messages m) msg_bound;
  chk "rounds" (Simkit.Metrics.rounds m) round_bound

let test_few_failures_bounds () =
  let spec = Helpers.spec ~n:120 ~t:12 in
  List.iter
    (fun schedule ->
      let report =
        exercise "few failures" spec (Simkit.Fault.crash_silently_at schedule)
      in
      check_thm41 "few failures" spec report ~reverted:false)
    [
      [ (0, 3) ];
      [ (3, 5); (7, 12) ];
      [ (1, 2); (2, 8); (5, 14); (11, 20) ];
      [ (0, 0); (1, 0); (2, 0); (3, 25); (4, 26) ];
    ]

let test_revert_path () =
  (* kill far more than half during the first work phase: the survivors must
     finish under embedded Protocol A *)
  let spec = Helpers.spec ~n:100 ~t:10 in
  let fault = Simkit.Fault.crash_silently_at (List.init 8 (fun i -> (i, 3))) in
  let report = exercise "revert" spec fault in
  check_thm41 "revert" spec report ~reverted:true;
  Alcotest.(check int) "two survive" 2 (Doall.Runner.survivors report)

let test_revert_then_more_crashes () =
  (* crash again inside the embedded Protocol A *)
  let spec = Helpers.spec ~n:60 ~t:8 in
  let fault =
    Simkit.Fault.crash_silently_at
      ((8, 100) :: (6, 400) :: List.init 6 (fun i -> (i, 2)))
  in
  let report = exercise "revert + later crash" spec fault in
  Alcotest.(check bool) "at least one survivor" true (Doall.Runner.survivors report >= 1)

let test_single_survivor_each () =
  let spec = Helpers.spec ~n:33 ~t:7 in
  for survivor = 0 to 6 do
    let schedule =
      List.filter_map
        (fun p -> if p = survivor then None else Some (p, 1))
        (List.init 7 Fun.id)
    in
    let report =
      exercise
        (Printf.sprintf "lone survivor %d" survivor)
        spec
        (Simkit.Fault.crash_silently_at schedule)
    in
    Alcotest.(check int) "one survivor" 1 (Doall.Runner.survivors report)
  done

let test_random_schedules () =
  let g = Prng.create 5150L in
  List.iter
    (fun (n, t) ->
      let spec = Helpers.spec ~n ~t in
      for i = 1 to 20 do
        let schedule = Helpers.random_schedule g ~t ~window:(n + 60) in
        ignore
          (exercise
             (Printf.sprintf "random n=%d t=%d #%d" n t i)
             spec
             (Simkit.Fault.crash_silently_at schedule))
      done)
    [ (100, 10); (64, 8); (7, 3); (1, 4); (200, 25); (13, 13); (40, 1); (50, 50) ]

let test_random_acting_crashes () =
  let g = Prng.create 6066L in
  let spec = Helpers.spec ~n:90 ~t:9 in
  for i = 1 to 30 do
    let fault =
      Simkit.Fault.random
        ~seed:(Prng.next_int64 g)
        ~t:9 ~victims:(Prng.int_in g 1 8) ~window:60
    in
    ignore (exercise (Printf.sprintf "acting crash #%d" i) spec fault)
  done

let test_alpha_variants () =
  (* generalized revert thresholds stay correct *)
  let g = Prng.create 4040L in
  List.iter
    (fun alpha ->
      let proto =
        Doall.Protocol_d.protocol_with_alpha ~alpha
          ~name:(Printf.sprintf "D[%0.2f]" alpha)
      in
      let spec = Helpers.spec ~n:60 ~t:10 in
      for i = 1 to 10 do
        let schedule = Helpers.random_schedule g ~t:10 ~window:40 in
        let report =
          Helpers.run ~fault:(Simkit.Fault.crash_silently_at schedule) spec proto
        in
        Helpers.check_correct (Printf.sprintf "alpha=%.2f #%d" alpha i) report
      done)
    [ 0.25; 0.5; 0.75 ]

let test_coord_variant () =
  (* the end-of-Section-4 coordinator variant: 2(t-1) messages per
     failure-free phase; correct under every schedule, falling back to an
     embedded Protocol A when no decision-holder survives *)
  let spec = Helpers.spec ~n:100 ~t:10 in
  let ff = Helpers.run spec Doall.Protocol_d_coord.protocol in
  Helpers.check_correct "coord ff" ff;
  Alcotest.(check int) "2(t-1) messages" 18
    (Simkit.Metrics.messages (Helpers.metrics ff));
  (* coordinator dies mid-broadcast: partial decision, help/relay recovery *)
  List.iter
    (fun cut ->
      let fault =
        Simkit.Fault.crash_acting_at
          [ (0, 11, Simkit.Fault.Crash { keep_work = false; delivery = Prefix cut }) ]
      in
      let r = Helpers.run ~fault spec Doall.Protocol_d_coord.protocol in
      Helpers.check_correct (Printf.sprintf "coord cut=%d" cut) r)
    [ 0; 1; 5; 9 ];
  (* random storms *)
  let g = Prng.create 909L in
  for i = 1 to 25 do
    let schedule = Helpers.random_schedule g ~t:10 ~window:120 in
    let r =
      Helpers.run
        ~fault:(Simkit.Fault.crash_silently_at schedule)
        spec Doall.Protocol_d_coord.protocol
    in
    Helpers.check_correct (Printf.sprintf "coord random #%d" i) r
  done;
  (* irregular shapes *)
  List.iter
    (fun (n, t) ->
      let spec = Helpers.spec ~n ~t in
      for i = 1 to 5 do
        let schedule = Helpers.random_schedule g ~t ~window:(n + 40) in
        let r =
          Helpers.run
            ~fault:(Simkit.Fault.crash_silently_at schedule)
            spec Doall.Protocol_d_coord.protocol
        in
        Helpers.check_correct (Printf.sprintf "coord n=%d t=%d #%d" n t i) r
      done)
    [ (7, 3); (5, 12); (1, 1); (64, 8) ]

let test_alpha_validation () =
  Alcotest.check_raises "alpha out of range"
    (Invalid_argument "Protocol_d: alpha must be in (0,1)") (fun () ->
      ignore (Doall.Protocol_d.protocol_with_alpha ~alpha:1.0 ~name:"bad"))

let suite =
  [
    Alcotest.test_case "failure-free exact costs" `Quick test_failure_free_exact;
    Alcotest.test_case "failure-free shapes" `Quick test_failure_free_shapes;
    Alcotest.test_case "Theorem 4.1 bounds, few failures" `Quick test_few_failures_bounds;
    Alcotest.test_case "revert to Protocol A" `Quick test_revert_path;
    Alcotest.test_case "revert then more crashes" `Quick test_revert_then_more_crashes;
    Alcotest.test_case "single survivor, all positions" `Quick test_single_survivor_each;
    Alcotest.test_case "random silent schedules" `Quick test_random_schedules;
    Alcotest.test_case "random acting crashes" `Quick test_random_acting_crashes;
    Alcotest.test_case "generalized alpha thresholds" `Quick test_alpha_variants;
    Alcotest.test_case "alpha validation" `Quick test_alpha_validation;
    Alcotest.test_case "coordinator variant (end of Section 4)" `Quick test_coord_variant;
  ]
