(* The asynchronous substrate: event-sim semantics, failure-detector
   soundness/completeness, and the asynchronous Protocol A. *)

module Prng = Dhw_util.Prng
module E = Asim.Event_sim

let unit_proc handle = { E.a_init = (fun _ -> ()); a_handle = handle }

let outcome ?(sends = []) ?(work = []) ?(terminate = false) ?continue_after () =
  { E.state = (); sends; work; terminate; continue_after }

let test_message_delay_bounds () =
  (* every delivery happens within [1, max_delay] of the send *)
  let sent_at = ref (-1) and got_at = ref (-1) in
  let proc =
    unit_proc (fun pid now () ev ->
        match ev with
        | E.Started ->
            if pid = 0 then begin
              sent_at := now;
              outcome ~sends:[ (1, "x") ] ~terminate:true ()
            end
            else outcome ()
        | E.Got _ ->
            got_at := now;
            outcome ~terminate:true ()
        | E.Retired_notice _ | E.Continue -> outcome ())
  in
  let cfg = E.config ~max_delay:7 ~seed:3L ~n_processes:2 ~n_units:1 () in
  let r = E.run cfg proc in
  Alcotest.(check bool) "completed" true r.completed;
  let d = !got_at - !sent_at in
  Alcotest.(check bool) (Printf.sprintf "delay %d in [1,7]" d) true (d >= 1 && d <= 7)

let test_fd_soundness_and_completeness () =
  (* observers record notifications; the detector must never report a
     process that is still running, and must eventually report every crash
     to every survivor *)
  let notices = Array.make 4 [] in
  let proc =
    unit_proc (fun pid now () ev ->
        match ev with
        | E.Retired_notice who ->
            notices.(pid) <- (who, now) :: notices.(pid);
            outcome ()
        | E.Started | E.Got _ | E.Continue -> outcome ())
  in
  let crash_at = [ (1, 10); (2, 25) ] in
  let cfg = E.config ~crash_at ~max_lag:6 ~seed:9L ~n_processes:4 ~n_units:1 () in
  let r = E.run cfg proc in
  ignore r;
  List.iter
    (fun obs ->
      let got = notices.(obs) in
      (* soundness: notification strictly after the true crash *)
      List.iter
        (fun (who, at) ->
          let true_crash = List.assoc who crash_at in
          if at <= true_crash then
            Alcotest.failf "observer %d notified of %d at %d <= crash %d" obs who
              at true_crash)
        got;
      (* completeness: both crashes reported to live observers *)
      Alcotest.(check bool)
        (Printf.sprintf "observer %d saw both" obs)
        true
        (List.mem_assoc 1 got && List.mem_assoc 2 got))
    [ 0; 3 ]

let test_termination_also_notified () =
  let saw = ref false in
  let proc =
    unit_proc (fun pid _ () ev ->
        match ev with
        | E.Started -> if pid = 0 then outcome ~terminate:true () else outcome ()
        | E.Retired_notice 0 ->
            saw := true;
            outcome ~terminate:true ()
        | E.Retired_notice _ | E.Got _ | E.Continue -> outcome ())
  in
  let cfg = E.config ~seed:4L ~n_processes:2 ~n_units:1 () in
  let r = E.run cfg proc in
  Alcotest.(check bool) "completed" true r.completed;
  Alcotest.(check bool) "termination notified" true !saw

let test_continue_scheduling () =
  let ticks = ref [] in
  let proc =
    {
      E.a_init = (fun _ -> 0);
      a_handle =
        (fun _ now k ev ->
          match ev with
          | E.Started -> { E.state = 0; sends = []; work = []; terminate = false; continue_after = Some 3 }
          | E.Continue ->
              ticks := now :: !ticks;
              {
                E.state = k + 1;
                sends = [];
                work = [];
                terminate = k >= 2;
                continue_after = (if k >= 2 then None else Some 3);
              }
          | E.Got _ | E.Retired_notice _ ->
              { E.state = k; sends = []; work = []; terminate = false; continue_after = None });
    }
  in
  let cfg = E.config ~seed:5L ~n_processes:1 ~n_units:1 () in
  let r = E.run cfg proc in
  Alcotest.(check bool) "completed" true r.completed;
  Alcotest.(check (list int)) "continues every 3 ticks" [ 9; 6; 3 ] !ticks

(* --- asynchronous Protocol A --- *)

let check_async name (r : E.result) =
  Alcotest.(check bool) (name ^ ": completed") true r.completed;
  let survivors =
    Array.fold_left
      (fun acc s -> match s with Simkit.Types.Terminated _ -> acc + 1 | _ -> acc)
      0 r.statuses
  in
  if survivors > 0 then
    Alcotest.(check bool)
      (name ^ ": all units done")
      true
      (Simkit.Metrics.all_units_done r.metrics)

let test_async_a_failure_free () =
  let spec = Helpers.spec ~n:80 ~t:16 in
  let r = Asim.Async_protocol_a.run spec in
  check_async "ff" r;
  Alcotest.(check int) "exactly n work" 80 (Simkit.Metrics.work r.metrics)

let test_async_a_failover_chain () =
  let spec = Helpers.spec ~n:60 ~t:8 in
  let crash_at = List.init 7 (fun i -> (i, 12 * (i + 1))) in
  let r = Asim.Async_protocol_a.run ~crash_at ~max_delay:9 ~max_lag:20 spec in
  check_async "chain" r;
  (* Theorem 2.3's work bound carries over *)
  let grid = Doall.Grid.make spec in
  Alcotest.(check bool) "work bound" true
    (Simkit.Metrics.work r.metrics <= Doall.Bounds.a_work grid)

let test_async_a_random () =
  let g = Prng.create 17L in
  let spec = Helpers.spec ~n:50 ~t:10 in
  for i = 1 to 25 do
    let crash_at = Helpers.random_schedule g ~t:10 ~window:600 in
    let r =
      Asim.Async_protocol_a.run ~crash_at
        ~max_delay:(Prng.int_in g 1 15)
        ~max_lag:(Prng.int_in g 1 40)
        ~seed:(Prng.next_int64 g) spec
    in
    check_async (Printf.sprintf "random #%d" i) r
  done

let test_async_a_unsound_detector_duplicates_but_completes () =
  (* Section 2.1 requires a *sound* detector. Violate it: convince process 3
     early on that 0, 1 and 2 are all gone. Two actives then run
     concurrently; idempotence keeps the execution correct, only the work
     count inflates. *)
  let spec = Helpers.spec ~n:40 ~t:6 in
  let false_suspicions = [ (3, 0, 5); (3, 1, 5); (3, 2, 5) ] in
  let sound = Asim.Async_protocol_a.run ~seed:2L spec in
  let unsound = Asim.Async_protocol_a.run ~seed:2L ~false_suspicions spec in
  check_async "unsound detector" unsound;
  Alcotest.(check bool)
    (Printf.sprintf "duplicated work: %d > %d"
       (Simkit.Metrics.work unsound.metrics)
       (Simkit.Metrics.work sound.metrics))
    true
    (Simkit.Metrics.work unsound.metrics > Simkit.Metrics.work sound.metrics)

let test_async_a_slow_detector_still_correct () =
  let spec = Helpers.spec ~n:30 ~t:6 in
  let crash_at = [ (0, 5); (1, 9); (2, 13) ] in
  let r = Asim.Async_protocol_a.run ~crash_at ~max_lag:500 spec in
  check_async "slow detector" r

let suite =
  [
    Alcotest.test_case "message delays bounded" `Quick test_message_delay_bounds;
    Alcotest.test_case "detector sound and complete" `Quick test_fd_soundness_and_completeness;
    Alcotest.test_case "termination notified too" `Quick test_termination_also_notified;
    Alcotest.test_case "continue scheduling" `Quick test_continue_scheduling;
    Alcotest.test_case "async A: failure-free" `Quick test_async_a_failure_free;
    Alcotest.test_case "async A: failover chain" `Quick test_async_a_failover_chain;
    Alcotest.test_case "async A: random schedules" `Quick test_async_a_random;
    Alcotest.test_case "async A: slow detector" `Quick test_async_a_slow_detector_still_correct;
    Alcotest.test_case "async A: unsound detector duplicates work" `Quick
      test_async_a_unsound_detector_duplicates_but_completes;
  ]
