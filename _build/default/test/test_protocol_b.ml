(* Protocol B: correctness, the at-most-one-active invariant (go-aheads are
   legitimate passive traffic), Theorem 2.8 bounds, and the Lemma 2.5
   additivity identities of the deadline functions. *)

module Prng = Dhw_util.Prng
module Grid = Doall.Grid
module B = Doall.Protocol_b
module Bounds = Doall.Bounds

let proto = B.protocol

let check_thm28 name spec (report : Doall.Runner.report) =
  let grid = Grid.make spec in
  let m = Helpers.metrics report in
  let chk what v bound =
    if v > bound then Alcotest.failf "%s: %s %d exceeds bound %d" name what v bound
  in
  chk "work" (Simkit.Metrics.work m) (Bounds.b_work grid);
  chk "messages" (Simkit.Metrics.messages m) (Bounds.b_msgs grid);
  chk "rounds" (Simkit.Metrics.rounds m) (Bounds.b_rounds grid)

let exercise name spec fault =
  let report, trace = Helpers.run_traced ~fault spec proto in
  Helpers.check_correct name report;
  Helpers.assert_one_active ~is_passive:Helpers.b_passive name trace;
  check_thm28 name spec report;
  report

let test_failure_free () =
  let spec = Helpers.spec ~n:256 ~t:16 in
  let report = exercise "ff" spec Simkit.Fault.none in
  Alcotest.(check int) "exactly n work" 256
    (Simkit.Metrics.work (Helpers.metrics report))

let test_linear_time () =
  (* the whole point of B: rounds stay O(n + t) even under the adversary
     that maximises A's running time (killing each active at activation) *)
  let spec = Helpers.spec ~n:100 ~t:16 in
  let fault = Simkit.Fault.crash_active_after_work ~units_between_crashes:1 ~max_crashes:15 in
  let rb = exercise "kill-at-first-unit" spec fault in
  let fault = Simkit.Fault.crash_active_after_work ~units_between_crashes:1 ~max_crashes:15 in
  let ra = Helpers.run ~fault spec Doall.Protocol_a.protocol in
  let rounds r = Simkit.Metrics.rounds (Helpers.metrics r) in
  Alcotest.(check bool)
    (Printf.sprintf "B (%d rounds) beats A (%d rounds) by >3x" (rounds rb) (rounds ra))
    true
    (3 * rounds rb < rounds ra)

let test_single_survivor_each () =
  let spec = Helpers.spec ~n:48 ~t:9 in
  for survivor = 0 to 8 do
    let schedule =
      List.filter_map
        (fun p -> if p = survivor then None else Some (p, 0))
        (List.init 9 Fun.id)
    in
    let report =
      exercise
        (Printf.sprintf "lone survivor %d" survivor)
        spec
        (Simkit.Fault.crash_silently_at schedule)
    in
    Alcotest.(check int) "one survivor" 1 (Doall.Runner.survivors report)
  done

let test_go_ahead_revival () =
  (* Kill the active process, then the would-be successor's group-mates
     below it, so the next candidate must discover survivors by go-ahead
     probing: a probed live process answers within a round by becoming
     active. *)
  let spec = Helpers.spec ~n:64 ~t:16 in
  (* groups of 4: {0..3} {4..7} ... Kill 0 early and 2,3 at start; process 1
     stays alive and must be found by probes from later processes only if
     they fire — in the normal flow 1 takes over by deadline. Then kill 1
     mid-run so group 2's members probe each other. *)
  let fault = Simkit.Fault.crash_silently_at [ (0, 40); (2, 0); (3, 0); (1, 120) ] in
  ignore (exercise "go-ahead revival" spec fault)

let test_random_schedules () =
  let g = Prng.create 4242L in
  List.iter
    (fun (n, t) ->
      let spec = Helpers.spec ~n ~t in
      let window = Bounds.b_rounds (Grid.make spec) in
      for i = 1 to 15 do
        let schedule = Helpers.random_schedule g ~t ~window in
        ignore
          (exercise
             (Printf.sprintf "random n=%d t=%d #%d" n t i)
             spec
             (Simkit.Fault.crash_silently_at schedule))
      done)
    [ (100, 16); (37, 7); (9, 9); (1, 5); (80, 25); (13, 2); (50, 1); (64, 64) ]

let test_random_acting_crashes () =
  let g = Prng.create 999L in
  let spec = Helpers.spec ~n:60 ~t:12 in
  for i = 1 to 25 do
    let fault =
      Simkit.Fault.random
        ~seed:(Prng.next_int64 g)
        ~t:12 ~victims:(Prng.int_in g 1 11) ~window:500
    in
    ignore (exercise (Printf.sprintf "acting crash #%d" i) spec fault)
  done

(* Lemma 2.5: TT(j,k) + TT(l,j) = TT(l,k) for l > j > k, and
   TT(j,k) + DDB(l,j) = DDB(l,k) when additionally g_j < g_l. *)
let tt grid j i =
  (* reconstruct TT from the exposed pieces, mirroring the paper *)
  let gj = Grid.group_of grid j and gi = Grid.group_of grid i in
  if gj = gi then
    (Grid.rank_in_group grid j - Grid.rank_in_group grid i) * B.pto grid
  else B.ddb grid j i + (Grid.rank_in_group grid j * B.pto grid)

let test_lemma_2_5 () =
  List.iter
    (fun (n, t) ->
      let grid = Grid.make (Helpers.spec ~n ~t) in
      for k = 0 to t - 3 do
        for j = k + 1 to t - 2 do
          for l = j + 1 to t - 1 do
            Alcotest.(check int)
              (Printf.sprintf "TT additivity l=%d j=%d k=%d (n=%d t=%d)" l j k n t)
              (tt grid l k)
              (tt grid j k + tt grid l j);
            if Grid.group_of grid j < Grid.group_of grid l then
              Alcotest.(check int)
                (Printf.sprintf "DDB identity l=%d j=%d k=%d" l j k)
                (B.ddb grid l k)
                (tt grid j k + B.ddb grid l j)
          done
        done
      done)
    [ (256, 16); (100, 9); (40, 25) ]

let test_pto_dominates_active_gaps () =
  (* PTO - 1 must exceed the longest gap between an active process's
     consecutive own-group broadcasts: subchunk work + its checkpoint *)
  List.iter
    (fun (n, t) ->
      let grid = Grid.make (Helpers.spec ~n ~t) in
      Alcotest.(check bool)
        (Printf.sprintf "PTO ok n=%d t=%d" n t)
        true
        (B.pto grid >= Grid.subchunk_size_max grid + 2))
    [ (256, 16); (10, 10); (1, 1); (33, 12) ]

let suite =
  [
    Alcotest.test_case "failure-free" `Quick test_failure_free;
    Alcotest.test_case "linear time vs A under worst adversary" `Quick test_linear_time;
    Alcotest.test_case "single survivor, all positions" `Quick test_single_survivor_each;
    Alcotest.test_case "go-ahead revival" `Quick test_go_ahead_revival;
    Alcotest.test_case "random silent schedules" `Quick test_random_schedules;
    Alcotest.test_case "random acting crashes" `Quick test_random_acting_crashes;
    Alcotest.test_case "Lemma 2.5 deadline identities" `Quick test_lemma_2_5;
    Alcotest.test_case "PTO dominates active gaps" `Quick test_pto_dominates_active_gaps;
  ]
