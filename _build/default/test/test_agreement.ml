(* Section 5: Byzantine agreement in the crash model, built on the work
   protocols. Agreement must hold in every execution; validity whenever the
   general survives. *)

module Prng = Dhw_util.Prng
module BA = Agreement.Crash_ba

let check name (o : BA.outcome) =
  if not o.agreement then Alcotest.failf "%s: agreement violated" name;
  if not o.validity then Alcotest.failf "%s: validity violated" name

let test_general_correct () =
  (* C's instances must keep n + senders small (63-bit deadlines) *)
  List.iter
    (fun (proto, n, t_bound) ->
      let o = BA.run ~n ~t_bound ~value:9 proto in
      check "general correct" o;
      Array.iteri
        (fun pid v -> if o.correct.(pid) && v <> 9 then Alcotest.failf "p%d decided %d" pid v)
        o.decisions)
    [ (BA.A, 48, 6); (BA.B, 48, 6); (BA.C, 24, 5); (BA.C_chunked, 24, 5) ]

let test_general_cut_all_values () =
  (* general informs k of the senders then dies, for every k *)
  List.iter
    (fun proto ->
      for k = 0 to 7 do
        let o = BA.run ~n:40 ~t_bound:6 ~value:5 ~general_cut:k proto in
        check (Printf.sprintf "cut=%d" k) o
      done)
    [ BA.A; BA.B ]

let test_general_cut_c () =
  for k = 0 to 5 do
    let o = BA.run ~n:24 ~t_bound:4 ~value:5 ~general_cut:k BA.C in
    check (Printf.sprintf "C cut=%d" k) o
  done

let test_sender_cascades () =
  (* senders die one by one after taking over *)
  let o =
    BA.run ~n:48 ~t_bound:6 ~value:3 ~general_cut:4
      ~crash_at:[ (1, 30); (2, 80); (3, 200); (4, 500); (5, 1200) ]
      BA.A
  in
  check "cascade A" o;
  let o =
    BA.run ~n:20 ~t_bound:4 ~value:3 ~general_cut:2
      ~crash_at:[ (1, 15); (2, 60); (3, 50_000) ]
      BA.C
  in
  check "cascade C" o

let test_random_schedules () =
  let g = Prng.create 888L in
  List.iter
    (fun (proto, label, n, t_bound, window) ->
      for i = 1 to 30 do
        let crash_at =
          List.filter_map
            (fun p ->
              if Prng.bool g then Some (p, Prng.int g window) else None)
            (List.init t_bound Fun.id)
          (* sender t_bound always survives, so at most t_bound crash *)
        in
        let cut =
          if Prng.bool g then Some (Prng.int g (t_bound + 1)) else None
        in
        let o = BA.run ~n ~t_bound ~value:7 ~crash_at ?general_cut:cut proto in
        check (Printf.sprintf "%s random #%d" label i) o
      done)
    [ (BA.A, "A", 48, 7, 4000); (BA.B, "B", 48, 7, 2000); (BA.C, "C", 24, 5, 100_000) ]

let test_message_complexity_shape () =
  (* via A the cost tracks Bracha's n + t√t; via chunked C the n-informs
     dominate and the protocol overhead is only O(t log t) *)
  let n = 96 and t_bound = 15 in
  let oa = BA.run ~n ~t_bound ~value:1 BA.A in
  Alcotest.(check bool)
    (Printf.sprintf "A msgs %d within 4x Bracha %d" oa.messages
       (BA.bracha_msgs ~n ~t:t_bound))
    true
    (oa.messages <= 4 * BA.bracha_msgs ~n ~t:t_bound);
  let oc = BA.run ~n:30 ~t_bound:7 ~value:1 BA.C_chunked in
  let c_bound =
    30 + Doall.Bounds.c_chunked_msgs (Doall.Spec.make ~n:30 ~t:8) + 8
  in
  Alcotest.(check bool)
    (Printf.sprintf "C msgs %d within bound %d" oc.messages c_bound)
    true
    (oc.messages <= c_bound)

let test_all_correct_informed () =
  (* every correct process must actually receive the value when the general
     is correct: decisions all = value, none left at default *)
  let o = BA.run ~n:64 ~t_bound:8 ~value:1234 ~crash_at:[ (1, 50); (4, 100) ] BA.B in
  check "informed" o;
  Array.iteri
    (fun pid v ->
      if o.correct.(pid) then Alcotest.(check int) (Printf.sprintf "p%d" pid) 1234 v)
    o.decisions

let test_validation () =
  Alcotest.check_raises "t_bound+1 > n" (Invalid_argument "Crash_ba.run") (fun () ->
      ignore (BA.run ~n:4 ~t_bound:4 ~value:1 BA.A))

let suite =
  [
    Alcotest.test_case "general correct, all protocols" `Quick test_general_correct;
    Alcotest.test_case "general dies mid-broadcast (A,B)" `Quick test_general_cut_all_values;
    Alcotest.test_case "general dies mid-broadcast (C)" `Quick test_general_cut_c;
    Alcotest.test_case "sender cascades" `Quick test_sender_cascades;
    Alcotest.test_case "random schedules" `Quick test_random_schedules;
    Alcotest.test_case "message complexity shape" `Quick test_message_complexity_shape;
    Alcotest.test_case "all correct informed" `Quick test_all_correct_informed;
    Alcotest.test_case "input validation" `Quick test_validation;
  ]
