test/test_protocol_b.ml: Alcotest Dhw_util Doall Fun Helpers List Printf Simkit
