test/test_protocol_d.ml: Alcotest Dhw_util Doall Fun Helpers List Printf Simkit
