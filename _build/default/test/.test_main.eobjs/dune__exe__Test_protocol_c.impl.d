test/test_protocol_c.ml: Alcotest Dhw_util Doall Fun Helpers List Printf Simkit String
