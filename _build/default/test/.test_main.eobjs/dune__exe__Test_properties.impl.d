test/test_properties.ml: Doall Fun Helpers List Printf QCheck2 Simkit String
