test/test_agreement.ml: Agreement Alcotest Array Dhw_util Doall Fun List Printf
