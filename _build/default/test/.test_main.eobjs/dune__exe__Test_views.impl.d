test/test_views.ml: Doall Helpers List QCheck2
