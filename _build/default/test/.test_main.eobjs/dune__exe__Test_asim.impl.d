test/test_asim.ml: Alcotest Array Asim Dhw_util Doall Helpers List Printf Simkit
