test/test_extensions.ml: Agreement Alcotest Dhw_util Doall Fun Helpers List Printf Simkit
