test/test_baselines.ml: Alcotest Dhw_util Doall Helpers List Printf Simkit
