test/test_sim.ml: Alcotest Array Doall Format List Simkit
