test/test_audit.ml: Alcotest Doall Helpers List Simkit
