test/test_integration.ml: Alcotest Array Dhw_util Doall Helpers List Printf Simkit
