test/test_protocol_a.ml: Alcotest Array Dhw_util Doall Fun Helpers List Printf Simkit
