test/test_exhaustive.ml: Alcotest Doall Format Helpers List Printf Simkit String
