test/test_scale.ml: Alcotest Asim Doall Helpers List Simkit
