test/test_util.ml: Alcotest Array Dhw_util Fun Helpers List QCheck2 String
