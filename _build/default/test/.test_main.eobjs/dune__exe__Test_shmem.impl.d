test/test_shmem.ml: Alcotest Dhw_util Helpers Printf Shmem Simkit
