test/test_grid.ml: Alcotest Array Dhw_util Doall Fun Helpers List QCheck2
