test/helpers.ml: Alcotest Dhw_util Doall Format List QCheck2 QCheck_alcotest Simkit
