(* The two Section 1 strawmen: exact cost profiles and correctness. *)

module Prng = Dhw_util.Prng

let test_trivial_exact () =
  let spec = Helpers.spec ~n:50 ~t:8 in
  let report = Helpers.run spec Doall.Baseline_trivial.protocol in
  Helpers.check_correct "trivial" report;
  let m = Helpers.metrics report in
  Alcotest.(check int) "t*n work" (50 * 8) (Simkit.Metrics.work m);
  Alcotest.(check int) "zero messages" 0 (Simkit.Metrics.messages m);
  Alcotest.(check int) "n rounds" 49 (Simkit.Metrics.rounds m)

let test_trivial_survives_everything () =
  let spec = Helpers.spec ~n:20 ~t:6 in
  let fault = Simkit.Fault.crash_silently_at [ (0, 0); (1, 3); (2, 7); (3, 10); (4, 19) ] in
  let report = Helpers.run ~fault spec Doall.Baseline_trivial.protocol in
  Helpers.check_correct "trivial under crashes" report

let test_checkpoint_period1_work_optimal () =
  (* at most n + t - 1 units even when every active process dies right
     after an unreported unit *)
  let spec = Helpers.spec ~n:60 ~t:10 in
  let fault =
    Simkit.Fault.crash_active_after_work ~units_between_crashes:1 ~max_crashes:9
  in
  let report = Helpers.run ~fault spec (Doall.Baseline_checkpoint.protocol ~period:1) in
  Helpers.check_correct "checkpoint/1" report;
  let work = Simkit.Metrics.work (Helpers.metrics report) in
  Alcotest.(check bool)
    (Printf.sprintf "work %d <= n+t-1 = %d" work (60 + 10 - 1))
    true
    (work <= 60 + 10 - 1)

let test_checkpoint_message_cost () =
  (* failure-free: one broadcast of t-1 messages per period *)
  let spec = Helpers.spec ~n:60 ~t:10 in
  let report = Helpers.run spec (Doall.Baseline_checkpoint.protocol ~period:1) in
  Alcotest.(check int) "n(t-1) messages" (60 * 9)
    (Simkit.Metrics.messages (Helpers.metrics report));
  let report = Helpers.run spec (Doall.Baseline_checkpoint.protocol ~period:6) in
  Alcotest.(check int) "(n/6)(t-1) messages" (10 * 9)
    (Simkit.Metrics.messages (Helpers.metrics report))

let test_checkpoint_period_tradeoff () =
  (* larger periods lose more work per crash *)
  let spec = Helpers.spec ~n:120 ~t:8 in
  let work_at period =
    (* the same adversary for every period: a crash every 10 units loses up
       to period-1 unannounced units *)
    let fault =
      Simkit.Fault.crash_active_after_work ~units_between_crashes:10 ~max_crashes:7
    in
    let report = Helpers.run ~fault spec (Doall.Baseline_checkpoint.protocol ~period) in
    Helpers.check_correct (Printf.sprintf "period %d" period) report;
    Simkit.Metrics.work (Helpers.metrics report)
  in
  Alcotest.(check bool) "period 20 redoes more than period 1" true
    (work_at 20 > work_at 1)

let test_checkpoint_random () =
  let g = Prng.create 12321L in
  List.iter
    (fun period ->
      let spec = Helpers.spec ~n:45 ~t:7 in
      for i = 1 to 10 do
        let schedule = Helpers.random_schedule g ~t:7 ~window:800 in
        let report =
          Helpers.run
            ~fault:(Simkit.Fault.crash_silently_at schedule)
            spec
            (Doall.Baseline_checkpoint.protocol ~period)
        in
        Helpers.check_correct (Printf.sprintf "ckpt/%d random #%d" period i) report
      done)
    [ 1; 3; 45 ]

let test_checkpoint_validation () =
  Alcotest.check_raises "period 0"
    (Invalid_argument "Baseline_checkpoint.protocol: period >= 1") (fun () ->
      ignore (Doall.Baseline_checkpoint.protocol ~period:0))

let suite =
  [
    Alcotest.test_case "trivial: exact costs" `Quick test_trivial_exact;
    Alcotest.test_case "trivial: survives everything" `Quick test_trivial_survives_everything;
    Alcotest.test_case "checkpoint/1: work <= n+t-1" `Quick test_checkpoint_period1_work_optimal;
    Alcotest.test_case "checkpoint: message cost" `Quick test_checkpoint_message_cost;
    Alcotest.test_case "checkpoint: period trade-off" `Quick test_checkpoint_period_tradeoff;
    Alcotest.test_case "checkpoint: random schedules" `Quick test_checkpoint_random;
    Alcotest.test_case "checkpoint: validation" `Quick test_checkpoint_validation;
  ]
