(* Protocol C's view-merge algebra (Lemma 3.4's knowledge ordering rests on
   it): merge must behave as a join — idempotent, commutative, associative,
   monotone in reduced view, and never information-losing. *)

module I = Doall.Protocol_c.Internal
module Gen = QCheck2.Gen

let spec = Doall.Spec.make ~n:12 ~t:8

let gen_raw =
  let open Gen in
  let* f = Gen.list_size (0 -- 6) (0 -- 7) in
  let* g0_point = 1 -- 13 in
  let* g0_round = 0 -- 50 in
  let* group_rounds =
    Gen.list_size (0 -- 7)
      (Gen.pair (0 -- (I.n_group_ids spec - 1)) (1 -- 50))
  in
  return { I.f; g0_point; g0_round; group_rounds }

let gen_view = Gen.map (I.view_of_raw spec) gen_raw

let norm v =
  let raw = I.raw_of_view v in
  (List.sort_uniq compare raw.f, raw.g0_point, List.sort compare raw.group_rounds)

let prop_idempotent =
  Helpers.qcheck_case ~count:200 ~name:"merge idempotent" gen_view (fun v ->
      norm (I.merge v v) = norm v)

let prop_commutative =
  Helpers.qcheck_case ~count:200 ~name:"merge commutative (information)"
    (Gen.pair gen_view gen_view)
    (fun (a, b) -> norm (I.merge a b) = norm (I.merge b a))

let prop_associative =
  Helpers.qcheck_case ~count:200 ~name:"merge associative (information)"
    (Gen.triple gen_view gen_view gen_view)
    (fun (a, b, c) -> norm (I.merge (I.merge a b) c) = norm (I.merge a (I.merge b c)))

let prop_monotone =
  Helpers.qcheck_case ~count:200 ~name:"merged reduced view >= both"
    (Gen.pair gen_view gen_view)
    (fun (a, b) ->
      let m = I.reduced_view (I.merge a b) in
      m >= I.reduced_view a && m >= I.reduced_view b)

let prop_no_information_loss =
  Helpers.qcheck_case ~count:200 ~name:"merge never loses F entries or work"
    (Gen.pair gen_view gen_view)
    (fun (a, b) ->
      let m = I.raw_of_view (I.merge a b) in
      let ra = I.raw_of_view a and rb = I.raw_of_view b in
      List.for_all (fun p -> List.mem p m.f) (ra.f @ rb.f)
      && m.g0_point >= max ra.g0_point rb.g0_point
      && List.for_all
           (fun (gid, r) ->
             match List.assoc_opt gid m.group_rounds with
             | Some r' -> r' >= r
             | None -> false)
           (ra.group_rounds @ rb.group_rounds))

let prop_absorbing_empty =
  Helpers.qcheck_case ~count:100 ~name:"empty view is the identity" gen_view
    (fun v ->
      let empty =
        I.view_of_raw spec { I.f = []; g0_point = 1; g0_round = 0; group_rounds = [] }
      in
      norm (I.merge v empty) = norm v && norm (I.merge empty v) = norm v)

let suite =
  [
    prop_idempotent;
    prop_commutative;
    prop_associative;
    prop_monotone;
    prop_no_information_loss;
    prop_absorbing_empty;
  ]
