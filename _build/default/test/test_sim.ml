(* Semantics tests for the synchronous kernel: delivery timing, crash
   delivery filters, round skipping, stall detection, accounting. *)

open Simkit.Types

let outcome ?(sends = []) ?(work = []) ?(terminate = false) ?wakeup state =
  { state; sends; work; terminate; wakeup }

let config ?fault ?max_rounds ?trace ~t ~n () =
  Simkit.Kernel.config ?fault ?max_rounds ?trace ~n_processes:t ~n_units:n ()

let quad =
  Alcotest.testable
    (fun ppf (w, x, y, z) -> Format.fprintf ppf "(%d,%d,%d,%d)" w x y z)
    ( = )

let test_delivery_next_round () =
  (* p0 sends at round 0; p1 must receive exactly at round 1. *)
  let received = ref [] in
  let proc =
    {
      init = (fun pid -> ((), if pid = 0 then Some 0 else None));
      step =
        (fun pid r () inbox ->
          List.iter (fun e -> received := (pid, r, e.src, e.sent_at) :: !received) inbox;
          if pid = 0 then outcome () ~sends:[ { dst = 1; payload = "hi" } ] ~terminate:true
          else outcome () ~terminate:true);
    }
  in
  let res = Simkit.Kernel.run (config ~t:2 ~n:1 ()) proc in
  Alcotest.(check bool) "completed" true (res.outcome = Simkit.Kernel.Completed);
  Alcotest.(check (list quad)) "delivery at r+1" [ (1, 1, 0, 0) ] !received

let test_non_future_wakeup_rejected () =
  let proc =
    {
      init = (fun _ -> ((), Some 0));
      step = (fun _ r () _ -> outcome () ~wakeup:r);
    }
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Simkit.Kernel.run (config ~t:1 ~n:1 ()) proc);
       false
     with Invalid_argument _ -> true)

let test_round_skipping () =
  (* one process, wakes at round 5_000_000 then terminates: the kernel must
     jump there without iterating (this test would time out otherwise) *)
  let far = 5_000_000 in
  let proc =
    {
      init = (fun _ -> (false, Some 0));
      step =
        (fun _ r started _ ->
          if not started then outcome true ~wakeup:far
          else begin
            Alcotest.(check int) "woke exactly at far" far r;
            outcome true ~terminate:true
          end);
    }
  in
  let res = Simkit.Kernel.run (config ~t:1 ~n:1 ()) proc in
  Alcotest.(check bool) "completed" true (res.outcome = Simkit.Kernel.Completed);
  Alcotest.(check int) "rounds metric" far (Simkit.Metrics.rounds res.metrics)

let broadcaster ~fanout =
  {
    init = (fun pid -> ((), if pid = 0 then Some 0 else None));
    step =
      (fun pid _ () inbox ->
        if pid = 0 then
          outcome ()
            ~sends:(List.init fanout (fun i -> { dst = i + 1; payload = i }))
            ~terminate:true
        else outcome () ~terminate:(inbox <> []));
  }

let count_received res = Simkit.Metrics.messages res.Simkit.Kernel.metrics

let test_crash_prefix_delivery () =
  let fault =
    Simkit.Fault.crash_acting_at
      [ (0, 0, Simkit.Fault.Crash { keep_work = false; delivery = Prefix 2 }) ]
  in
  let trace = Simkit.Trace.create () in
  let res = Simkit.Kernel.run (config ~fault ~trace ~t:6 ~n:1 ()) (broadcaster ~fanout:5) in
  Alcotest.(check int) "2 messages escaped" 2 (count_received res);
  let dropped =
    List.length
      (List.filter
         (function Simkit.Trace.Dropped _ -> true | _ -> false)
         (Simkit.Trace.events trace))
  in
  Alcotest.(check int) "3 dropped" 3 dropped;
  Alcotest.(check bool) "p0 crashed" true
    (match res.statuses.(0) with Crashed 0 -> true | _ -> false)

let test_crash_indices_delivery () =
  let fault =
    Simkit.Fault.crash_acting_at
      [ (0, 0, Simkit.Fault.Crash { keep_work = false; delivery = Indices [ 1; 3 ] }) ]
  in
  let res = Simkit.Kernel.run (config ~fault ~t:6 ~n:1 ()) (broadcaster ~fanout:5) in
  Alcotest.(check int) "2 messages escaped" 2 (count_received res)

let test_silent_crash_no_action () =
  let fault = Simkit.Fault.crash_silently_at [ (0, 0) ] in
  let res = Simkit.Kernel.run (config ~fault ~t:6 ~n:1 ()) (broadcaster ~fanout:5) in
  Alcotest.(check int) "no messages" 0 (count_received res);
  (* recipients never hear anything and never terminate: stalled *)
  Alcotest.(check bool) "stalled" true
    (match res.outcome with Simkit.Kernel.Stalled _ -> true | _ -> false)

let test_messages_to_dead_count () =
  (* recipient dead from round 0: the send still counts, and the sender's
     termination completes the run *)
  let fault = Simkit.Fault.crash_silently_at [ (1, 0) ] in
  let proc =
    {
      init = (fun pid -> ((), if pid = 0 then Some 0 else None));
      step =
        (fun pid _ () _ ->
          if pid = 0 then
            outcome () ~sends:[ { dst = 1; payload = () } ] ~terminate:true
          else Alcotest.fail "dead process stepped");
    }
  in
  let res = Simkit.Kernel.run (config ~fault ~t:2 ~n:1 ()) proc in
  Alcotest.(check int) "message counted" 1 (count_received res);
  Alcotest.(check bool) "completed" true (res.outcome = Simkit.Kernel.Completed)

let test_keep_work_forced_with_delivery () =
  (* a crash that lets a message out must also keep the round's work *)
  let fault =
    Simkit.Fault.crash_acting_at
      [ (0, 0, Simkit.Fault.Crash { keep_work = false; delivery = Prefix 1 }) ]
  in
  let proc =
    {
      init = (fun pid -> ((), if pid = 0 then Some 0 else None));
      step =
        (fun pid _ () inbox ->
          if pid = 0 then
            outcome () ~work:[ 0 ] ~sends:[ { dst = 1; payload = () } ]
          else outcome () ~terminate:(inbox <> []));
    }
  in
  let res = Simkit.Kernel.run (config ~fault ~t:2 ~n:1 ()) proc in
  Alcotest.(check int) "work kept" 1 (Simkit.Metrics.work res.metrics);
  Alcotest.(check int) "message out" 1 (count_received res)

let test_keep_work_dropped_without_delivery () =
  let fault =
    Simkit.Fault.crash_acting_at
      [ (0, 0, Simkit.Fault.Crash { keep_work = false; delivery = Prefix 0 }) ]
  in
  let proc =
    {
      init = (fun pid -> ((), if pid = 0 then Some 0 else None));
      step =
        (fun pid _ () inbox ->
          ignore inbox;
          if pid = 0 then outcome () ~work:[ 0 ] ~sends:[ { dst = 1; payload = () } ]
          else outcome () ~terminate:true);
    }
  in
  (* p1 never gets a message and never wakes: give it an initial wakeup so
     the run completes *)
  let proc = { proc with init = (fun pid -> ((), Some (if pid = 0 then 0 else 3))) } in
  let res = Simkit.Kernel.run (config ~fault ~t:2 ~n:1 ()) proc in
  Alcotest.(check int) "work dropped" 0 (Simkit.Metrics.work res.metrics);
  Alcotest.(check int) "no message" 0 (count_received res)

let test_work_multiplicity () =
  let proc =
    {
      init = (fun _ -> (0, Some 0));
      step =
        (fun _ r k _ ->
          if k < 3 then outcome (k + 1) ~work:[ 1 ] ~wakeup:(r + 1)
          else outcome k ~terminate:true);
    }
  in
  let res = Simkit.Kernel.run (config ~t:1 ~n:3 ()) proc in
  Alcotest.(check int) "total work 3" 3 (Simkit.Metrics.work res.metrics);
  Alcotest.(check int) "unit 1 thrice" 3 (Simkit.Metrics.unit_multiplicity res.metrics 1);
  Alcotest.(check int) "unit 0 never" 0 (Simkit.Metrics.unit_multiplicity res.metrics 0);
  Alcotest.(check int) "covered 1" 1 (Simkit.Metrics.units_covered res.metrics);
  Alcotest.(check bool) "not all done" false (Simkit.Metrics.all_units_done res.metrics)

let test_round_limit () =
  let proc =
    {
      init = (fun _ -> ((), Some 0));
      step = (fun _ r () _ -> outcome () ~wakeup:(r + 1));
    }
  in
  let res = Simkit.Kernel.run (config ~max_rounds:100 ~t:1 ~n:1 ()) proc in
  Alcotest.(check bool) "round limit" true
    (match res.outcome with Simkit.Kernel.Round_limit _ -> true | _ -> false)

let test_determinism () =
  let go () =
    let spec = Doall.Spec.make ~n:60 ~t:12 in
    let fault = Simkit.Fault.random ~seed:99L ~t:12 ~victims:11 ~window:300 in
    let r = Doall.Runner.run ~fault spec Doall.Protocol_b.protocol in
    ( Simkit.Metrics.work r.metrics,
      Simkit.Metrics.messages r.metrics,
      Simkit.Metrics.rounds r.metrics )
  in
  let a = go () and b = go () in
  Alcotest.(check (triple int int int)) "identical reruns" a b

let test_fault_random_spares_one () =
  Alcotest.check_raises "victims = t rejected"
    (Invalid_argument "Fault.random: victims must be < t") (fun () ->
      ignore (Simkit.Fault.random ~seed:1L ~t:4 ~victims:4 ~window:10))

let test_crash_active_counts () =
  let spec = Doall.Spec.make ~n:50 ~t:8 in
  let fault = Simkit.Fault.crash_active_after_work ~units_between_crashes:5 ~max_crashes:3 in
  let r = Doall.Runner.run ~fault spec Doall.Protocol_a.protocol in
  Alcotest.(check int) "exactly 3 crashes" 3 (Doall.Runner.crashed r)

let suite =
  [
    Alcotest.test_case "delivery at r+1" `Quick test_delivery_next_round;
    Alcotest.test_case "non-future wakeup rejected" `Quick test_non_future_wakeup_rejected;
    Alcotest.test_case "round skipping is O(1)" `Quick test_round_skipping;
    Alcotest.test_case "crash: prefix delivery" `Quick test_crash_prefix_delivery;
    Alcotest.test_case "crash: indices delivery" `Quick test_crash_indices_delivery;
    Alcotest.test_case "silent crash acts not" `Quick test_silent_crash_no_action;
    Alcotest.test_case "sends to dead still count" `Quick test_messages_to_dead_count;
    Alcotest.test_case "delivered send forces work kept" `Quick test_keep_work_forced_with_delivery;
    Alcotest.test_case "prefix-0 crash drops work" `Quick test_keep_work_dropped_without_delivery;
    Alcotest.test_case "work multiplicity accounting" `Quick test_work_multiplicity;
    Alcotest.test_case "round limit guard" `Quick test_round_limit;
    Alcotest.test_case "kernel determinism" `Quick test_determinism;
    Alcotest.test_case "random fault spares a survivor" `Quick test_fault_random_spares_one;
    Alcotest.test_case "crash-active adversary counts" `Quick test_crash_active_counts;
  ]
