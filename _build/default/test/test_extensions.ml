(* The paper's side remarks, made executable: tunable checkpoint-group size,
   message-size accounting, online work arrival, and the common-knowledge
   bootstrap. *)

module Prng = Dhw_util.Prng

(* --- Protocol A with non-standard group sizes --- *)

let test_group_size_correctness () =
  let g = Prng.create 7171L in
  let spec = Helpers.spec ~n:60 ~t:12 in
  List.iter
    (fun s ->
      let proto = Doall.Protocol_a.protocol_with_group_size s in
      for i = 1 to 8 do
        let schedule = Helpers.random_schedule g ~t:12 ~window:8000 in
        let report =
          Helpers.run ~fault:(Simkit.Fault.crash_silently_at schedule) spec proto
        in
        Helpers.check_correct (Printf.sprintf "s=%d #%d" s i) report
      done)
    [ 1; 2; 3; 6; 12 ]

let test_group_size_sweet_spot () =
  (* failure-free messages are minimised near s = sqrt(t) *)
  let spec = Helpers.spec ~n:1024 ~t:64 in
  let msgs s =
    Simkit.Metrics.messages
      (Helpers.metrics (Helpers.run spec (Doall.Protocol_a.protocol_with_group_size s)))
  in
  let at_sqrt = msgs 8 in
  Alcotest.(check bool) "sqrt(t) beats s=1" true (at_sqrt < msgs 1);
  Alcotest.(check bool) "sqrt(t) beats s=t" true (at_sqrt < msgs 64)

let test_group_size_validation () =
  Alcotest.(check bool) "s=0 rejected" true
    (try
       ignore (Doall.Grid.make_with_group_size (Helpers.spec ~n:4 ~t:4) 0);
       false
     with Invalid_argument _ -> true)

(* --- message sizes --- *)

let test_msg_size_shapes () =
  let spec = Helpers.spec ~n:1024 ~t:64 in
  let grid = Doall.Grid.make spec in
  (* A/B messages are logarithmic, C views linear-ish in t, D in n+t *)
  let ab = Doall.Msg_size.a_msg_bits grid in
  let c = Doall.Msg_size.c_msg_bits spec ~round_bits:32 in
  let d = Doall.Msg_size.d_msg_bits spec in
  Alcotest.(check bool) "A/B tiny" true (ab <= 24);
  Alcotest.(check bool) "C view > t bits" true (c > 64);
  Alcotest.(check bool) "D view >= n+t bits" true (d >= 1024 + 64);
  Alcotest.(check bool) "b = a+1" true (Doall.Msg_size.b_msg_bits grid = ab + 1)

let test_msg_size_gmy_gap () =
  (* ours stays logarithmic in n while GMY grows linearly *)
  let bits n =
    let spec = Helpers.spec ~n ~t:16 in
    let grid = Doall.Grid.make spec in
    ( Doall.Msg_size.ba_msg_bits grid ~value_bits:16,
      Doall.Msg_size.gmy_msg_bits ~n ~value_bits:16 )
  in
  let ours_small, gmy_small = bits 64 in
  let ours_big, gmy_big = bits 4096 in
  Alcotest.(check bool) "ours grows slowly" true (ours_big - ours_small <= 8);
  Alcotest.(check bool) "gmy grows linearly" true (gmy_big - gmy_small >= 4000)

(* --- online Protocol D --- *)

let online_cfg arrivals horizon =
  { Doall.Protocol_d_online.arrivals; horizon; idle_block = 4 }

let covered_units (r : Doall.Runner.report) =
  let m = Helpers.metrics r in
  List.filter
    (fun u -> Simkit.Metrics.unit_multiplicity m u > 0)
    (List.init (Simkit.Metrics.n_units m) Fun.id)

let test_online_single_wave () =
  let arrivals = List.init 24 (fun u -> (0, u, u mod 6)) in
  let spec = Helpers.spec ~n:24 ~t:6 in
  let r = Helpers.run spec (Doall.Protocol_d_online.protocol (online_cfg arrivals 10)) in
  Helpers.check_correct "single wave" r;
  Alcotest.(check int) "exactly n work" 24 (Simkit.Metrics.work (Helpers.metrics r))

let test_online_waves_and_gaps () =
  let arrivals =
    List.init 10 (fun u -> (0, u, u mod 6))
    @ List.init 10 (fun u -> (50, u + 10, (u + 1) mod 6))
    @ [ (120, 20, 3); (120, 21, 4) ]
  in
  let spec = Helpers.spec ~n:22 ~t:6 in
  let r = Helpers.run spec (Doall.Protocol_d_online.protocol (online_cfg arrivals 130)) in
  Helpers.check_correct "waves" r

let test_online_survivor_arrivals_done () =
  (* crash sites holding no pending arrivals: everything must complete *)
  let arrivals = List.init 20 (fun u -> (0, u, 5)) in
  let spec = Helpers.spec ~n:20 ~t:6 in
  let fault = Simkit.Fault.crash_silently_at [ (0, 7); (1, 11); (2, 15) ] in
  let r =
    Helpers.run ~fault spec (Doall.Protocol_d_online.protocol (online_cfg arrivals 30))
  in
  Helpers.check_correct "survivor arrivals" r

let test_online_lost_arrivals_semantics () =
  (* units arriving at a crashed site are lost — and only those *)
  let arrivals =
    [ (0, 0, 0); (0, 1, 1); (40, 2, 0) (* site 0 dead by then *); (40, 3, 1) ]
  in
  let spec = Helpers.spec ~n:4 ~t:4 in
  let fault = Simkit.Fault.crash_silently_at [ (0, 20) ] in
  let r =
    Helpers.run ~fault spec (Doall.Protocol_d_online.protocol (online_cfg arrivals 60))
  in
  Alcotest.(check bool) "completed" true (r.outcome = Simkit.Kernel.Completed);
  Alcotest.(check (list int)) "unit 2 lost, others done" [ 0; 1; 3 ] (covered_units r)

let test_online_random () =
  let g = Prng.create 4711L in
  for i = 1 to 12 do
    let n = Prng.int_in g 5 40 and t = Prng.int_in g 2 10 in
    let arrivals =
      List.init n (fun u -> (Prng.int g 40, u, Prng.int g t))
    in
    let horizon = 60 in
    (* crash only processes holding no late arrivals, after round 45 *)
    let holders = List.map (fun (_, _, s) -> s) arrivals in
    let candidates =
      List.filter (fun p -> not (List.mem p holders)) (List.init t Fun.id)
    in
    let schedule =
      List.filteri (fun idx _ -> idx < t - 1) candidates
      |> List.map (fun p -> (p, Prng.int_in g 1 50))
    in
    let spec = Helpers.spec ~n ~t in
    let r =
      Helpers.run
        ~fault:(Simkit.Fault.crash_silently_at schedule)
        spec
        (Doall.Protocol_d_online.protocol (online_cfg arrivals horizon))
    in
    Helpers.check_correct (Printf.sprintf "online random #%d" i) r
  done

(* --- bootstrap --- *)

let test_bootstrap_ok () =
  List.iter
    (fun proto ->
      let o = Agreement.Bootstrap.run ~n:80 ~t:8 proto in
      Alcotest.(check bool) "ok" true o.ok)
    [ Agreement.Crash_ba.A; Agreement.Crash_ba.B ]

let test_bootstrap_with_crashes () =
  let o =
    Agreement.Bootstrap.run ~n:60 ~t:8
      ~crash_at:[ (0, 2); (1, 30); (2, 500) ]
      Agreement.Crash_ba.A
  in
  Alcotest.(check bool) "ok under crashes" true o.ok

let test_bootstrap_cost_at_most_doubles () =
  (* Section 1: for n = Ω(t) the bootstrap at most doubles the effort,
     up to the constant-factor slack of the bounds *)
  let n = 200 and t = 10 in
  let direct =
    Simkit.Metrics.effort
      (Helpers.metrics (Helpers.run (Helpers.spec ~n ~t) Doall.Protocol_a.protocol))
  in
  let boot = Agreement.Bootstrap.run ~n ~t Agreement.Crash_ba.A in
  let total = boot.total_messages + boot.total_work in
  Alcotest.(check bool)
    (Printf.sprintf "bootstrap effort %d <= 2x direct %d" total direct)
    true
    (total <= 2 * direct)

let suite =
  [
    Alcotest.test_case "group sizes: correctness" `Quick test_group_size_correctness;
    Alcotest.test_case "group sizes: sqrt(t) sweet spot" `Quick test_group_size_sweet_spot;
    Alcotest.test_case "group sizes: validation" `Quick test_group_size_validation;
    Alcotest.test_case "message sizes: shapes" `Quick test_msg_size_shapes;
    Alcotest.test_case "message sizes: GMY gap" `Quick test_msg_size_gmy_gap;
    Alcotest.test_case "online D: single wave" `Quick test_online_single_wave;
    Alcotest.test_case "online D: waves and gaps" `Quick test_online_waves_and_gaps;
    Alcotest.test_case "online D: survivors' arrivals done" `Quick test_online_survivor_arrivals_done;
    Alcotest.test_case "online D: lost-arrival semantics" `Quick test_online_lost_arrivals_semantics;
    Alcotest.test_case "online D: random mixes" `Quick test_online_random;
    Alcotest.test_case "online D: arrival validation" `Quick (fun () ->
        Alcotest.(check bool) "arrival past horizon rejected" true
          (try
             ignore
               (Helpers.run (Helpers.spec ~n:2 ~t:2)
                  (Doall.Protocol_d_online.protocol
                     (online_cfg [ (90, 0, 0) ] 60)));
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "bootstrap: both stages succeed" `Quick test_bootstrap_ok;
    Alcotest.test_case "bootstrap: with crashes" `Quick test_bootstrap_with_crashes;
    Alcotest.test_case "bootstrap: cost at most doubles" `Quick test_bootstrap_cost_at_most_doubles;
  ]
