(* Shared machinery for the test suites. *)

module Prng = Dhw_util.Prng

let spec ~n ~t = Doall.Spec.make ~n ~t

let run ?fault ?max_rounds ?trace s p = Doall.Runner.run ?fault ?max_rounds ?trace s p

let run_traced ?fault s p =
  let trace = Simkit.Trace.create () in
  let report = Doall.Runner.run ?fault ~trace s p in
  (report, trace)

let check_correct name report =
  Alcotest.(check bool)
    (name ^ ": outcome completed")
    true
    (report.Doall.Runner.outcome = Simkit.Kernel.Completed);
  if Doall.Runner.survivors report > 0 then
    Alcotest.(check bool)
      (name ^ ": all units done")
      true
      (Doall.Runner.work_complete report)

let metrics (r : Doall.Runner.report) = r.metrics

(* The central safety invariant of Protocols A, B, C, via the library
   auditor: at most one process acts per round, plus structural
   well-formedness. [is_passive] classifies message payloads that inactive
   processes may legitimately send: Protocol B's go-aheads, Protocol C's
   alive-responses. *)
let assert_clean_audit checks name trace =
  List.iter
    (fun check ->
      match check trace with
      | [] -> ()
      | violation :: _ ->
          Alcotest.failf "%s: %s" name
            (Format.asprintf "%a" Simkit.Audit.pp_violation violation))
    checks

let assert_one_active ?(is_passive = fun _ -> false) name trace =
  assert_clean_audit
    [ Simkit.Audit.well_formed; Simkit.Audit.at_most_one_active ~passive_msg:is_passive ]
    name trace

let b_passive what = what = "go_ahead"
let c_passive what = what = "alive"

(* A random silent-crash schedule that always spares at least one process. *)
let random_schedule g ~t ~window =
  let victims = Prng.int g t in
  let pids = Prng.sample_without_replacement g victims t in
  List.map (fun pid -> (pid, Prng.int g (window + 1))) pids

let qcheck_case ?(count = 50) ~name gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen law)
