(* Protocol C: correctness, Theorem 3.8 work/message bounds, the
   at-most-one-active invariant (alive-responses are passive traffic), the
   deadline separation D(m), and the Corollary 3.9 variant. Instances are
   kept small: C's deadlines reach K·(n+t)·2^(n+t-1) rounds. *)

module Prng = Dhw_util.Prng
module C = Doall.Protocol_c
module Bounds = Doall.Bounds

let check_thm38 name spec (report : Doall.Runner.report) =
  let m = Helpers.metrics report in
  let chk what v bound =
    if v > bound then Alcotest.failf "%s: %s %d exceeds bound %d" name what v bound
  in
  chk "work" (Simkit.Metrics.work m) (Bounds.c_work spec);
  chk "messages" (Simkit.Metrics.messages m) (Bounds.c_msgs spec)

let exercise ?(proto = C.protocol) ?check name spec fault =
  let report, trace = Helpers.run_traced ~fault spec proto in
  Helpers.check_correct name report;
  Helpers.assert_one_active ~is_passive:Helpers.c_passive name trace;
  (match check with None -> check_thm38 name spec report | Some f -> f name spec report);
  report

let test_failure_free () =
  let spec = Helpers.spec ~n:24 ~t:8 in
  let report = exercise "ff" spec Simkit.Fault.none in
  Alcotest.(check int) "everyone survives" 8 (Doall.Runner.survivors report)

let test_single_survivor_each () =
  let spec = Helpers.spec ~n:16 ~t:6 in
  for survivor = 0 to 5 do
    let schedule =
      List.filter_map
        (fun p -> if p = survivor then None else Some (p, 0))
        (List.init 6 Fun.id)
    in
    let report =
      exercise
        (Printf.sprintf "lone survivor %d" survivor)
        spec
        (Simkit.Fault.crash_silently_at schedule)
    in
    Alcotest.(check int) "one survivor" 1 (Doall.Runner.survivors report)
  done

let test_takeover_chain () =
  let spec = Helpers.spec ~n:20 ~t:8 in
  let fault =
    Simkit.Fault.crash_active_after_work ~units_between_crashes:3 ~max_crashes:7
  in
  ignore (exercise "takeover chain" spec fault)

let test_random_schedules () =
  let g = Prng.create 31337L in
  List.iter
    (fun (n, t) ->
      let spec = Helpers.spec ~n ~t in
      for i = 1 to 12 do
        (* crash inside the early active window and far beyond it *)
        let window = if i mod 2 = 0 then 200 else 100_000 in
        let schedule = Helpers.random_schedule g ~t ~window in
        ignore
          (exercise
             (Printf.sprintf "random n=%d t=%d #%d" n t i)
             spec
             (Simkit.Fault.crash_silently_at schedule))
      done)
    [ (20, 8); (12, 5); (30, 4); (1, 3); (8, 8); (16, 2); (20, 1) ]

let test_chunked_variant () =
  let g = Prng.create 808L in
  let spec = Helpers.spec ~n:28 ~t:6 in
  let check name spec (report : Doall.Runner.report) =
    let m = Helpers.metrics report in
    if Simkit.Metrics.work m > Bounds.c_chunked_work spec then
      Alcotest.failf "%s: chunked work %d exceeds %d" name (Simkit.Metrics.work m)
        (Bounds.c_chunked_work spec);
    if Simkit.Metrics.messages m > Bounds.c_chunked_msgs spec then
      Alcotest.failf "%s: chunked msgs %d exceed %d" name
        (Simkit.Metrics.messages m) (Bounds.c_chunked_msgs spec)
  in
  for i = 1 to 10 do
    let schedule = Helpers.random_schedule g ~t:6 ~window:2000 in
    ignore
      (exercise ~proto:C.protocol_chunked ~check
         (Printf.sprintf "chunked #%d" i)
         spec
         (Simkit.Fault.crash_silently_at schedule))
  done

let test_deadline_separation () =
  (* D(i, m) must exceed the sum of all later gaps plus the K-budget —
     the super-increasing property Lemma 3.4's proof rests on. *)
  let spec = Helpers.spec ~n:12 ~t:8 in
  let period = 1 in
  let k = C.big_k spec ~period in
  let cap = 12 + 8 in
  let d m = C.deadline_gap spec ~period ~pid:3 ~m in
  for m = 1 to cap - 2 do
    let tail = ref 0 in
    for m' = m + 1 to cap - 1 do
      tail := !tail + d m'
    done;
    if d m <= ((cap - m) * k) + !tail then
      Alcotest.failf "D(%d)=%d not > (cap-m)K + sum tail=%d" m (d m)
        (((cap - m) * k) + !tail)
  done;
  (* m = 0 additionally dominates every other process's D(_, 0) tail *)
  let d0 pid = C.deadline_gap spec ~period ~pid ~m:0 in
  for pid = 0 to 6 do
    Alcotest.(check bool) "D(i,0) decreasing in pid" true (d0 pid > d0 (pid + 1))
  done

let test_big_k_matches_paper () =
  (* K = 5t + 2 log t for per-unit reporting on power-of-two t *)
  let spec = Helpers.spec ~n:16 ~t:8 in
  Alcotest.(check int) "K" ((5 * 8) + (2 * 3)) (C.big_k spec ~period:1)

let test_instance_cap () =
  Alcotest.(check bool) "overflowing instance rejected" true
    (try
       ignore (Helpers.run (Helpers.spec ~n:60 ~t:16) C.protocol);
       false
     with Failure msg ->
       String.length msg > 0
       && String.sub msg 0 10 = "Protocol C")

let test_work_multiplicity_bounded () =
  (* no unit is performed more than a handful of times even across the
     post-completion activation cascade *)
  let spec = Helpers.spec ~n:20 ~t:8 in
  let report = Helpers.run spec C.protocol in
  let m = Helpers.metrics report in
  for u = 0 to 19 do
    let mult = Simkit.Metrics.unit_multiplicity m u in
    if mult < 1 || mult > 8 then Alcotest.failf "unit %d multiplicity %d" u mult
  done

let test_naive_blowup_vs_c () =
  (* the Section 3 scenario: naive spreading redoes Θ(t²) work across the
     post-crash cascade, real C stays within n + 2t *)
  let n = 20 and t = 16 in
  let spec = Helpers.spec ~n ~t in
  let schedule = List.init (t / 2 - 1) (fun i -> (t / 2 + 1 + i, 1)) in
  let naive =
    Helpers.run
      ~fault:(Simkit.Fault.crash_silently_at schedule)
      spec Doall.Protocol_c_naive.protocol
  in
  Helpers.check_correct "naive" naive;
  let c =
    exercise "real C under same schedule" spec
      (Simkit.Fault.crash_silently_at schedule)
  in
  let work r = Simkit.Metrics.work (Helpers.metrics r) in
  Alcotest.(check bool)
    (Printf.sprintf "naive work %d > C work %d" (work naive) (work c))
    true
    (work naive > work c)

let suite =
  [
    Alcotest.test_case "failure-free" `Quick test_failure_free;
    Alcotest.test_case "single survivor, all positions" `Quick test_single_survivor_each;
    Alcotest.test_case "takeover chain" `Quick test_takeover_chain;
    Alcotest.test_case "random silent schedules" `Quick test_random_schedules;
    Alcotest.test_case "Corollary 3.9 chunked variant" `Quick test_chunked_variant;
    Alcotest.test_case "deadline separation (Lemma 3.4)" `Quick test_deadline_separation;
    Alcotest.test_case "K matches paper" `Quick test_big_k_matches_paper;
    Alcotest.test_case "oversized instance rejected" `Quick test_instance_cap;
    Alcotest.test_case "multiplicity bounded" `Quick test_work_multiplicity_bounded;
    Alcotest.test_case "naive variant blows up, C does not" `Quick test_naive_blowup_vs_c;
  ]
