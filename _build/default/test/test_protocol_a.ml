(* Protocol A: correctness under every schedule shape, the at-most-one-active
   invariant, and Theorem 2.3's work/message/round bounds. *)

module Prng = Dhw_util.Prng
module Grid = Doall.Grid
module Bounds = Doall.Bounds

let proto = Doall.Protocol_a.protocol

let check_thm23 name spec (report : Doall.Runner.report) =
  let grid = Grid.make spec in
  let m = Helpers.metrics report in
  let chk what v bound =
    if v > bound then Alcotest.failf "%s: %s %d exceeds bound %d" name what v bound
  in
  chk "work" (Simkit.Metrics.work m) (Bounds.a_work grid);
  chk "messages" (Simkit.Metrics.messages m) (Bounds.a_msgs grid);
  chk "rounds" (Simkit.Metrics.rounds m) (Bounds.a_rounds grid)

let exercise name spec fault =
  let report, trace = Helpers.run_traced ~fault spec proto in
  Helpers.check_correct name report;
  Helpers.assert_one_active name trace;
  check_thm23 name spec report;
  report

let test_failure_free () =
  let spec = Helpers.spec ~n:256 ~t:16 in
  let report = exercise "ff" spec Simkit.Fault.none in
  let m = Helpers.metrics report in
  Alcotest.(check int) "exactly n work" 256 (Simkit.Metrics.work m);
  Alcotest.(check int) "everyone survives" 16 (Doall.Runner.survivors report)

let test_single_survivor_each () =
  (* for every k, kill everyone except process k at round 0 *)
  let spec = Helpers.spec ~n:48 ~t:9 in
  for survivor = 0 to 8 do
    let schedule =
      List.filter_map
        (fun p -> if p = survivor then None else Some (p, 0))
        (List.init 9 Fun.id)
    in
    let report =
      exercise
        (Printf.sprintf "lone survivor %d" survivor)
        spec
        (Simkit.Fault.crash_silently_at schedule)
    in
    Alcotest.(check int) "one survivor" 1 (Doall.Runner.survivors report);
    Alcotest.(check bool) "did all the work" true
      (Simkit.Metrics.work_by (Helpers.metrics report) survivor >= 48)
  done

let test_sequential_takeovers () =
  (* each process crashes shortly after becoming active *)
  let spec = Helpers.spec ~n:64 ~t:8 in
  let fault =
    Simkit.Fault.crash_active_after_work ~units_between_crashes:9 ~max_crashes:7
  in
  let report = exercise "takeover chain" spec fault in
  Alcotest.(check int) "seven crashes" 7 (Doall.Runner.crashed report)

let test_mid_broadcast_crash () =
  (* the active process dies while full-checkpointing: only a prefix of the
     broadcast escapes, and the successor must finish the checkpoint *)
  let spec = Helpers.spec ~n:64 ~t:16 in
  List.iter
    (fun cut ->
      let fault =
        Simkit.Fault.dynamic (fun v ->
            if v.Simkit.Fault.sv_pid = 0 && v.sv_sends > 1 then
              Simkit.Fault.Crash { keep_work = false; delivery = Prefix cut }
            else Survive)
      in
      ignore (exercise (Printf.sprintf "mid-broadcast cut=%d" cut) spec fault))
    [ 0; 1; 2; 3 ]

let test_random_schedules () =
  let g = Prng.create 2024L in
  List.iter
    (fun (n, t) ->
      let spec = Helpers.spec ~n ~t in
      for i = 1 to 15 do
        let schedule = Helpers.random_schedule g ~t ~window:(Bounds.a_rounds (Grid.make spec)) in
        ignore
          (exercise
             (Printf.sprintf "random n=%d t=%d #%d" n t i)
             spec
             (Simkit.Fault.crash_silently_at schedule))
      done)
    [ (100, 16); (37, 7); (9, 9); (1, 5); (80, 25); (13, 2); (50, 1) ]

let test_random_acting_crashes () =
  (* crashes that hit processes exactly when they act, with partial
     broadcast delivery *)
  let g = Prng.create 77L in
  let spec = Helpers.spec ~n:60 ~t:12 in
  for i = 1 to 25 do
    let fault =
      Simkit.Fault.random
        ~seed:(Prng.next_int64 g)
        ~t:12 ~victims:(Prng.int_in g 1 11) ~window:3000
    in
    ignore (exercise (Printf.sprintf "acting crash #%d" i) spec fault)
  done

let test_termination_statuses () =
  let spec = Helpers.spec ~n:30 ~t:6 in
  let report = Helpers.run spec proto in
  Array.iteri
    (fun pid st ->
      match st with
      | Simkit.Types.Terminated _ -> ()
      | other ->
          Alcotest.failf "process %d should have terminated, is %s" pid
            (Simkit.Types.status_to_string other))
    report.statuses

let test_deadline_formula () =
  let grid = Grid.make (Helpers.spec ~n:256 ~t:16) in
  Alcotest.(check int) "DD(0) = 0" 0 (Doall.Protocol_a.deadline grid 0);
  let l = Grid.max_active_rounds grid in
  Alcotest.(check int) "DD(5) = 5L" (5 * l) (Doall.Protocol_a.deadline grid 5);
  (* the budget is the paper's n + 3t up to rounding slack *)
  Alcotest.(check bool) "L within [n+3t, n+3t+3s+8]" true
    (l >= 256 + 48 && l <= 256 + 48 + 12 + 8)

let test_work_conservation () =
  (* every unit performed at least once, and multiplicity bounded by the
     number of activations (crashes + 1) *)
  let spec = Helpers.spec ~n:40 ~t:8 in
  let fault = Simkit.Fault.crash_silently_at [ (0, 10); (1, 300); (2, 700) ] in
  let report = Helpers.run ~fault spec proto in
  let m = Helpers.metrics report in
  for u = 0 to 39 do
    let mult = Simkit.Metrics.unit_multiplicity m u in
    if mult < 1 || mult > 4 then
      Alcotest.failf "unit %d multiplicity %d out of [1,4]" u mult
  done

let test_stress_perfect_squares () =
  (* the exact paper setting at several scales, worst-case-ish adversary *)
  List.iter
    (fun t ->
      let n = 4 * t in
      let spec = Helpers.spec ~n ~t in
      let fault =
        Simkit.Fault.crash_active_after_work
          ~units_between_crashes:(max 1 (n / t))
          ~max_crashes:(t - 1)
      in
      let report = exercise (Printf.sprintf "square t=%d" t) spec fault in
      (* paper-exact bounds on these instances *)
      let m = Helpers.metrics report in
      let sqrt_t = Dhw_util.Intmath.isqrt t in
      Alcotest.(check bool) "work <= 3n" true (Simkit.Metrics.work m <= 3 * n);
      Alcotest.(check bool) "msgs <= 9 t sqrt t" true
        (Simkit.Metrics.messages m <= 9 * t * sqrt_t))
    [ 4; 9; 16; 25; 36 ]

let suite =
  [
    Alcotest.test_case "failure-free" `Quick test_failure_free;
    Alcotest.test_case "single survivor, all positions" `Quick test_single_survivor_each;
    Alcotest.test_case "sequential takeovers" `Quick test_sequential_takeovers;
    Alcotest.test_case "mid-broadcast crash" `Quick test_mid_broadcast_crash;
    Alcotest.test_case "random silent schedules" `Quick test_random_schedules;
    Alcotest.test_case "random acting crashes" `Quick test_random_acting_crashes;
    Alcotest.test_case "all terminate without faults" `Quick test_termination_statuses;
    Alcotest.test_case "deadline formula" `Quick test_deadline_formula;
    Alcotest.test_case "work conservation + multiplicity" `Quick test_work_conservation;
    Alcotest.test_case "paper bounds on perfect squares" `Quick test_stress_perfect_squares;
  ]
