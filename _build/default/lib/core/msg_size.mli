(** Message-size accounting (bits), for the end of Section 1.1: the paper's
    Byzantine-agreement messages are [O(log n + log²|V|)] bits, versus
    Galil–Mayer–Yung's [Ω(n + log²|V|)], because GMY messages carry live-set
    and tree-position information. Protocol C is the interesting case
    internally: it wins on message {e count} by shipping whole views — each
    ordinary message carries [F_i] and the per-group pointer/round arrays,
    i.e. [Θ(t(log t + log R))] bits. *)

val a_msg_bits : Grid.t -> int
(** Worst-case bits of a Protocol A/B checkpoint message: subchunk and group
    indices, [⌈log S⌉ + ⌈log G⌉] plus a tag bit. *)

val b_msg_bits : Grid.t -> int
(** A's plus the go-ahead tag. *)

val c_msg_bits : Spec.t -> round_bits:int -> int
(** Worst-case bits of a Protocol C ordinary message: the retired set, the
    work pointer, and pointer+round per group, with [round_bits] bits per
    round number (C's rounds reach [2^(n+t)], so this is [n+t] by default
    in the bench). *)

val d_msg_bits : Spec.t -> int
(** A Protocol D view: the outstanding-unit and live-process sets as
    bitmaps, phase number, done flag. *)

val ba_msg_bits : Grid.t -> value_bits:int -> int
(** A Section 5 agreement message via A/B: checkpoint bits plus the value.
    Compare {!gmy_msg_bits}. *)

val gmy_msg_bits : n:int -> value_bits:int -> int
(** The Galil–Mayer–Yung lower envelope [n + log²|V|]. *)
