type packed =
  | Packed : {
      proc : ('s, 'm) Simkit.Types.process;
      show : 'm -> string;
    }
      -> packed

type t = { name : string; describe : string; make : Spec.t -> packed }
