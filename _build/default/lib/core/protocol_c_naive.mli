(** The naive knowledge-spreading algorithm that Section 3 presents to
    motivate Protocol C's fault-detection levels: the active process performs
    unit [u] and reports units [1..u] to process [u mod t] — with no fault
    detection whatsoever. The most knowledgeable survivor takes over on
    deadline expiry.

    Worst case (the nested-crash scenario of Section 3, bench E8): Θ(n + t²)
    work and Θ(n + t²) messages, because each successor re-performs units
    [t/2+1 .. t-1] and re-reports them to processes that are long dead.

    Deviation noted in DESIGN.md: deadlines carry an extra [+ (t - i)·K]
    skew so that processes with equal reduced views never fire
    simultaneously (the paper waves this away with "appropriate
    deadlines"). *)

type msg = Know of int  (** units [1..c] have been performed *)

val show_msg : msg -> string

val protocol : Protocol.t
