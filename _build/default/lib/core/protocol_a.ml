open Simkit.Types
open Ckpt_script

type msg = Ckpt_script.ord = Partial of int | Full of int * int

let show_msg = Ckpt_script.show_ord

type state = Waiting of last | Active of action list

let deadline grid j = j * Grid.max_active_rounds grid

let make_on_grid grid =
  let inject = Fun.id in
  let init pid =
    if pid = 0 then (Active (work_script grid 0 1), Some 0)
    else (Waiting No_msg, Some (deadline grid pid))
  in
  let step pid r st inbox =
    match st with
    | Active script ->
        let o = run_active ~inject r script in
        { o with state = Active o.state }
    | Waiting last ->
        (* At most one process is active, so at most one ordinary message
           arrives per round; the fold keeps the latest for robustness. *)
        let last =
          List.fold_left
            (fun _acc { src; payload; _ } -> Last_ord { ord = payload; src })
            last inbox
        in
        if knows_all_done grid pid last then
          { state = Waiting last; sends = []; work = []; terminate = true; wakeup = None }
        else if r >= deadline grid pid then
          let o = run_active ~inject r (takeover_script grid pid last) in
          { o with state = Active o.state }
        else
          {
            state = Waiting last;
            sends = [];
            work = [];
            terminate = false;
            wakeup = Some (deadline grid pid);
          }
  in
  Protocol.Packed { proc = { init; step }; show = show_msg }

let protocol =
  {
    Protocol.name = "A";
    describe = "work-optimal, O(t^1.5) msgs, O(nt) worst-case rounds (Thm 2.3)";
    make = (fun spec -> make_on_grid (Grid.make spec));
  }

let protocol_with_group_size s =
  {
    Protocol.name = Printf.sprintf "A[s=%d]" s;
    describe = "Protocol A with a non-standard checkpoint-group size";
    make = (fun spec -> make_on_grid (Grid.make_with_group_size spec s));
  }
