(** The online variant of Protocol D sketched at the end of Sections 1 and 4
    (and patented by IBM, [9]): work arrives continually at individual sites
    and is {e not} initially common knowledge. "Essentially, the idea is to
    run Eventual Byzantine Agreement periodically."

    Each process keeps two monotone sets: [known] (units it has heard of)
    and [done] (units it knows performed); agreement phases merge both by
    union, so newly arrived work spreads system-wide within one phase. Work
    phases split the outstanding units [known \ done] exactly as in
    Protocol D; when nothing is outstanding the processes keep exchanging
    heartbeats every [idle_block] rounds so that fresh arrivals are picked
    up. Processes terminate at the first agreement that finds nothing
    outstanding after the [horizon] round (the simulation's stand-in for
    "the input stream was closed").

    Guarantee: every unit that arrives at a site which survives to
    participate in one more agreement phase is performed (a unit whose site
    crashes before ever sharing it is lost, as in any real inbox). No
    revert-to-A path: the online setting stays in the parallel regime. *)

type config = {
  arrivals : (int * int * int) list;
      (** (round, unit id, site): the unit becomes known to the site at the
          start of that round *)
  horizon : int;  (** no arrivals at or after this round *)
  idle_block : int;  (** heartbeat work-phase length when nothing is
                         outstanding (>= 1) *)
}

val protocol : config -> Protocol.t
(** The spec passed by the runner sizes the metrics ([Spec.n] = total number
    of distinct unit ids used in [arrivals]); no unit is known at round 0
    unless [arrivals] says so. *)
