(** A Do-All problem instance: [t] synchronous crash-prone processes must
    perform [n] independent idempotent units of work, numbered [0 .. n-1].
    The work is common knowledge at round 0 (Section 1; for the bootstrap
    when it is not, see {!Agreement}). *)

type t = private { n : int; t : int }

val make : n:int -> t:int -> t
(** @raise Invalid_argument unless [n >= 1] and [t >= 1]. *)

val n : t -> int
val processes : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
