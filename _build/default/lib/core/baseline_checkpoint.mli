(** The straightforward checkpointing solution from Section 1: a single
    active process performs the work, broadcasting a checkpoint to {e all}
    processes after every [period] completed units; when the active process
    crashes, the next-numbered process takes over from the last checkpoint it
    received.

    With [period = 1] this is the paper's second strawman: at most [n+t-1]
    units of work but almost [t·n] messages. Larger periods trade messages
    for redone work — the trade-off that motivates Protocol A's two-level
    checkpointing (and bench E10 sweeps it). *)

val protocol : period:int -> Protocol.t
(** @raise Invalid_argument if [period < 1]. *)
