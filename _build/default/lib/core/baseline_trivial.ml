open Simkit.Types

type state = { next_unit : int; n : int }

type msg = |

let show_msg : msg -> string = function _ -> .

let make spec =
  let n = Spec.n spec in
  let init _pid = ({ next_unit = 0; n }, Some 0) in
  let step _pid _round st _inbox =
    let u = st.next_unit in
    {
      state = { st with next_unit = u + 1 };
      sends = [];
      work = [ u ];
      terminate = u + 1 >= st.n;
      wakeup = Some (u + 1);
    }
  in
  Protocol.Packed { proc = { init; step }; show = show_msg }

let protocol =
  {
    Protocol.name = "trivial";
    describe = "every process performs every unit; 0 msgs, tn work";
    make;
  }
