open Simkit.Types
module Intmath = Dhw_util.Intmath
module ISet = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* Group topology. t is padded to a power of two; the virtual processes
   t .. t_pad-1 are never polled, never counted in reduced views, and exist
   only so every level partitions evenly. Levels run 1 .. L (L = log2 t_pad);
   level h has 2^(h-1) groups of size 2^(L-h+1). Groups are numbered
   globally: gid = 2^(h-1) - 1 + (index within level). *)

type topo = { t_real : int; t_pad : int; levels : int; n_group_ids : int }

let topo_make t_real =
  let t_pad = Intmath.next_power_of_two t_real in
  let levels = if t_pad = 1 then 0 else Intmath.ilog2 t_pad in
  { t_real; t_pad; levels; n_group_ids = t_pad - 1 }

let group_size topo h = 1 lsl (topo.levels - h + 1)
let gid_of topo h pid = (1 lsl (h - 1)) - 1 + (pid / group_size topo h)

let level_of_gid topo gid =
  let h = Intmath.ilog2 (gid + 1) + 1 in
  assert (h >= 1 && h <= topo.levels);
  h

let members_range topo gid =
  let h = level_of_gid topo gid in
  let size = group_size topo h in
  let idx = gid - ((1 lsl (h - 1)) - 1) in
  (idx * size, size)

let lowest_member topo gid = fst (members_range topo gid)

let next_cyclic topo gid q =
  let lo, size = members_range topo gid in
  lo + ((q - lo + 1) mod size)

(* ------------------------------------------------------------------ *)
(* Views: the triple (F_i, point_i, round_i) of Section 3.1. Arrays are
   treated as immutable (copy on update) so views can be shipped in
   messages without aliasing. *)

type view = {
  f : ISet.t;  (* real retired pids known *)
  g0_point : int;  (* next work unit, 1-based; n+1 = all done *)
  g0_round : round;
  points : int array;  (* per gid: pid the pointer rests on *)
  rounds : round array;
}

let view_init topo =
  {
    f = ISet.empty;
    g0_point = 1;
    g0_round = 0;
    points = Array.init topo.n_group_ids (fun gid -> lowest_member topo gid);
    rounds = Array.make topo.n_group_ids 0;
  }

let reduced_view v = v.g0_point - 1 + ISet.cardinal v.f

let merge_views mine theirs =
  let g0_point, g0_round =
    if
      theirs.g0_point > mine.g0_point
      || (theirs.g0_point = mine.g0_point && theirs.g0_round > mine.g0_round)
    then (theirs.g0_point, theirs.g0_round)
    else (mine.g0_point, mine.g0_round)
  in
  let points = Array.copy mine.points in
  let rounds = Array.copy mine.rounds in
  Array.iteri
    (fun gid r ->
      if r > rounds.(gid) then begin
        rounds.(gid) <- r;
        points.(gid) <- theirs.points.(gid)
      end)
    theirs.rounds;
  { f = ISet.union mine.f theirs.f; g0_point; g0_round; points; rounds }

(* First pollable/reportable process at or after the pointer: skips self,
   known-retired, and virtual pids. None when the group minus F is {self}. *)
let effective topo view self gid =
  let lo, size = members_range topo gid in
  let rec scan q steps =
    if steps = size then None
    else if q <> self && q < topo.t_real && not (ISet.mem q view.f) then Some q
    else scan (lo + ((q - lo + 1) mod size)) (steps + 1)
  in
  scan view.points.(gid) 0

let bump_group topo view gid recipient r =
  let points = Array.copy view.points in
  let rounds = Array.copy view.rounds in
  points.(gid) <- next_cyclic topo gid recipient;
  rounds.(gid) <- r;
  { view with points; rounds }

(* ------------------------------------------------------------------ *)
(* Deadlines. *)

let big_k spec ~period =
  let t = Spec.processes spec in
  let tp = Intmath.next_power_of_two t in
  let l = if tp = 1 then 0 else Intmath.ilog2 tp in
  (4 * tp) + (2 * l) + (tp * period)

let deadline_gap spec ~period ~pid ~m =
  let n = Spec.n spec and t = Spec.processes spec in
  let cap = n + t in
  if m < 0 || m > cap - 1 then invalid_arg "Protocol_c.deadline_gap";
  let k = big_k spec ~period in
  try
    if m >= 1 then
      Intmath.checked_mul (Intmath.checked_mul k (cap - m)) (Intmath.pow 2 (cap - 1 - m))
    else
      Intmath.checked_mul
        (Intmath.checked_mul (Intmath.checked_mul k (t - pid)) cap)
        (Intmath.pow 2 (cap - 1))
  with Failure _ ->
    failwith
      (Printf.sprintf
         "Protocol C: instance n=%d t=%d too large for exact 63-bit deadlines \
          (need n+t <= ~45)"
         n t)

(* ------------------------------------------------------------------ *)
(* Messages and process state. *)

type msg = Ordinary of view | Are_you_alive | Alive

let show_msg = function
  | Ordinary v -> Printf.sprintf "ord(m=%d,w=%d,|F|=%d)" (reduced_view v) v.g0_point
                    (ISet.cardinal v.f)
  | Are_you_alive -> "are_you_alive?"
  | Alive -> "alive"

type phase =
  | Polling of int  (* level h: resolve a target and send "Are you alive?" *)
  | Awaiting of { h : int; target : pid }  (* poll sent at r; decide at r+2 *)
  | Reporting_failure of int  (* send the new F entry into level h+1, resume h *)
  | Working
  | Reporting_work

type mode = Inactive of { deadline : round } | Activeph of phase

type state = { view : view; mode : mode }

(* What the active process does this round, after skipping free transitions
   (exhausted groups, missing report recipients). *)
type act =
  | Halt
  | Do_unit_now
  | Send_poll of { target : pid; h : int }
  | Send_report of { target : pid; gid : int; resume : phase }

let rec resolve topo n pid view phase =
  match phase with
  | Polling h ->
      if h = 0 then resolve topo n pid view Working
      else (
        match effective topo view pid (gid_of topo h pid) with
        | None -> resolve topo n pid view (Polling (h - 1))
        | Some q -> Send_poll { target = q; h })
  | Working -> if view.g0_point > n then Halt else Do_unit_now
  | Reporting_work -> (
      if topo.levels = 0 then resolve topo n pid view Working
      else
        match effective topo view pid (gid_of topo 1 pid) with
        | None -> resolve topo n pid view Working
        | Some z -> Send_report { target = z; gid = gid_of topo 1 pid; resume = Working })
  | Reporting_failure h -> (
      match effective topo view pid (gid_of topo (h + 1) pid) with
      | None -> resolve topo n pid view (Polling h)
      | Some z ->
          Send_report
            { target = z; gid = gid_of topo (h + 1) pid; resume = Polling h })
  | Awaiting _ -> assert false (* handled in [step], needs the inbox *)

let protocol_with_period ~period ~name =
  let make spec =
    let n = Spec.n spec in
    let t = Spec.processes spec in
    let topo = topo_make t in
    let period = period spec in
    if period < 1 then invalid_arg "Protocol_c: period >= 1";
    (* Fail fast if deadlines overflow 63-bit rounds. *)
    ignore (deadline_gap spec ~period ~pid:0 ~m:0);
    let dgap pid m = deadline_gap spec ~period ~pid ~m in
    let should_report w =
      (* after completing 1-based unit w *)
      topo.levels > 0 && (w mod period = 0 || w = n)
    in
    (* Execute the resolved action as this round's outcome. *)
    let perform _pid r view act =
      match act with
      | Halt ->
          {
            state = { view; mode = Activeph Working };
            sends = [];
            work = [];
            terminate = true;
            wakeup = None;
          }
      | Do_unit_now ->
          let w = view.g0_point in
          let view = { view with g0_point = w + 1; g0_round = r } in
          let next = if should_report w then Reporting_work else Working in
          {
            state = { view; mode = Activeph next };
            sends = [];
            work = [ w - 1 ];
            terminate = false;
            wakeup = Some (r + 1);
          }
      | Send_poll { target; h } ->
          {
            state = { view; mode = Activeph (Awaiting { h; target }) };
            sends = [ { dst = target; payload = Are_you_alive } ];
            work = [];
            terminate = false;
            wakeup = Some (r + 2);
          }
      | Send_report { target; gid; resume } ->
          let view = bump_group topo view gid target r in
          {
            state = { view; mode = Activeph resume };
            sends = [ { dst = target; payload = Ordinary view } ];
            work = [];
            terminate = false;
            wakeup = Some (r + 1);
          }
    in
    let init pid =
      let view = view_init topo in
      if pid = 0 then
        ({ view; mode = Activeph (Polling topo.levels) }, Some 0)
      else
        let deadline = dgap pid 0 in
        ({ view; mode = Inactive { deadline } }, Some deadline)
    in
    let step pid r st inbox =
      match st.mode with
      | Activeph (Awaiting { h; target }) ->
          let alive =
            List.exists
              (fun { src; payload; _ } -> src = target && payload = Alive)
              inbox
          in
          if alive then
            (* found a live process at level h: leave the level *)
            perform pid r st.view (resolve topo n pid st.view (Polling (h - 1)))
          else begin
            (* timeout: record the failure, report it one level up (except at
               the top level), then continue polling level h *)
            let view = { st.view with f = ISet.add target st.view.f } in
            let points = Array.copy view.points in
            points.(gid_of topo h pid) <- next_cyclic topo (gid_of topo h pid) target;
            let view = { view with points } in
            let next = if h <> topo.levels then Reporting_failure h else Polling h in
            perform pid r view (resolve topo n pid view next)
          end
      | Activeph phase -> perform pid r st.view (resolve topo n pid st.view phase)
      | Inactive { deadline } ->
          let replies =
            List.filter_map
              (fun { src; payload; _ } ->
                if payload = Are_you_alive then Some { dst = src; payload = Alive }
                else None)
              inbox
          in
          let ords =
            List.filter_map
              (fun { payload; _ } ->
                match payload with Ordinary v -> Some v | _ -> None)
              inbox
          in
          let view = List.fold_left merge_views st.view ords in
          if r >= deadline then
            (* become active: fault detection top-down, then the work *)
            let o = perform pid r view (resolve topo n pid view (Polling topo.levels)) in
            { o with sends = replies @ o.sends }
          else
            let deadline =
              if ords <> [] then r + dgap pid (reduced_view view) else deadline
            in
            {
              state = { view; mode = Inactive { deadline } };
              sends = replies;
              work = [];
              terminate = false;
              wakeup = Some deadline;
            }
    in
    Protocol.Packed { proc = { init; step }; show = show_msg }
  in
  { Protocol.name; describe = "knowledge-spreading, O(t log t) msgs (Thm 3.8)"; make }

let protocol =
  protocol_with_period ~period:(fun _ -> 1) ~name:"C"

module Internal = struct
  type raw_view = {
    f : int list;
    g0_point : int;
    g0_round : int;
    group_rounds : (int * int) list;
  }

  let view_of_raw spec raw =
    let topo = topo_make (Spec.processes spec) in
    let base = view_init topo in
    let points = Array.copy base.points in
    let rounds = Array.copy base.rounds in
    List.iter
      (fun (gid, r) ->
        if gid >= 0 && gid < topo.n_group_ids then begin
          rounds.(gid) <- r;
          (* a deterministic pointer position derived from the round, so
             that equal rounds always carry equal pointers *)
          let lo, size = members_range topo gid in
          points.(gid) <- lo + (r mod size)
        end)
      raw.group_rounds;
    {
      f = ISet.of_list (List.filter (fun p -> p < topo.t_real) raw.f);
      g0_point = max 1 raw.g0_point;
      g0_round = raw.g0_round;
      points;
      rounds;
    }

  let raw_of_view (v : view) =
    {
      f = ISet.elements v.f;
      g0_point = v.g0_point;
      g0_round = v.g0_round;
      group_rounds =
        Array.to_list (Array.mapi (fun gid r -> (gid, r)) v.rounds)
        |> List.filter (fun (_, r) -> r > 0);
    }

  let merge = merge_views
  let reduced_view = reduced_view
  let n_group_ids spec = (topo_make (Spec.processes spec)).n_group_ids
end

let protocol_chunked =
  protocol_with_period
    ~period:(fun spec ->
      max 1 (Intmath.ceil_div (Spec.n spec) (Spec.processes spec)))
    ~name:"C-chunked"
