(** The central-coordinator variant of Protocol D sketched at the end of
    Section 4: "We can also cut down the message complexity in the case of
    no failures to 2(t−1), rather than 2t² ... Instead of messages being
    broadcast during the agreement phase, they are all sent to a central
    coordinator, who broadcasts the results. ... Dealing with failures is
    somewhat subtle if we do this though, so we do not analyze this
    approach carefully here."

    This implementation fills in the subtle part conservatively:

    - each agreement phase, every worker sends its view to the phase's
      coordinator (the lowest live pid), which merges and broadcasts a
      {e decision} — 2(t−1) messages per failure-free phase, as claimed;
    - a process that misses the decision (coordinator crashed mid-broadcast,
      or its own report arrived late) broadcasts {e help} requests; any
      process holding a decision relays its latest one — if {e any} live
      process holds a decision, every helper eventually obtains one;
    - only when help rounds exhaust — which implies no live process holds a
      decision, i.e. the phase system is dead — does a process fall back to
      an embedded Protocol A over the whole workload, with deadlines spaced
      so that fallback activations never overlap (window-aligned bases plus
      pid·L offsets).

    Failure-free cost: n work, ⌈n/t⌉ + 3 rounds, 2(t−1) messages per phase.
    Under coordinator failures the variant abandons parallelism and pays
    Protocol A's sequential costs — the price of the optimization the paper
    declined to analyze. Correctness (every execution with a survivor
    performs all work) holds for every crash schedule. *)

type msg

val show_msg : msg -> string

val protocol : Protocol.t
