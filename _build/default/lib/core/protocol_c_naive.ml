open Simkit.Types
module Intmath = Dhw_util.Intmath

type msg = Know of int

let show_msg (Know c) = Printf.sprintf "know(%d)" c

type mode =
  | Naive_waiting of { known : int; deadline : round }
  | Naive_active of { next_unit : int; pending : int option }
      (** [pending = Some u]: unit [u] was just performed, report it this
          round to process [u mod t] *)

let make spec =
  let n = Spec.n spec in
  let t = Spec.processes spec in
  (* K: rounds for an active process to have reported to every other
     process — t consecutive unit/report pairs. *)
  let k = (2 * t) + 2 in
  let dgap pid m =
    let cap = n + t in
    try
      if m >= 1 then
        Intmath.checked_add
          (Intmath.checked_mul (Intmath.checked_mul k (cap - m))
             (Intmath.pow 2 (cap - 1 - m)))
          ((t - pid) * k)
      else
        Intmath.checked_mul
          (Intmath.checked_mul (Intmath.checked_mul k (t - pid)) cap)
          (Intmath.pow 2 (cap - 1))
    with Failure _ ->
      failwith
        (Printf.sprintf
           "Protocol C (naive): instance n=%d t=%d too large for 63-bit deadlines" n t)
  in
  let init pid =
    if pid = 0 then (Naive_active { next_unit = 1; pending = None }, Some 0)
    else
      let deadline = dgap pid 0 in
      (Naive_waiting { known = 0; deadline }, Some deadline)
  in
  let activate r known =
    if known >= n then
      (* everything done: halt immediately *)
      {
        state = Naive_active { next_unit = n + 1; pending = None };
        sends = [];
        work = [];
        terminate = true;
        wakeup = None;
      }
    else
      let u = known + 1 in
      {
        state = Naive_active { next_unit = u; pending = Some u };
        sends = [];
        work = [ u - 1 ];
        terminate = false;
        wakeup = Some (r + 1);
      }
  in
  let step pid r st inbox =
    match st with
    | Naive_active { next_unit; pending } -> (
        match pending with
        | Some u ->
            (* report units 1..u to process u mod t *)
            let target = u mod t in
            let sends =
              if target = pid then [] else [ { dst = target; payload = Know u } ]
            in
            let done_all = u >= n in
            {
              state = Naive_active { next_unit = u + 1; pending = None };
              sends;
              work = [];
              terminate = done_all;
              wakeup = (if done_all then None else Some (r + 1));
            }
        | None ->
            let u = next_unit in
            {
              state = Naive_active { next_unit = u; pending = Some u };
              sends = [];
              work = [ u - 1 ];
              terminate = false;
              wakeup = Some (r + 1);
            })
    | Naive_waiting { known; deadline } ->
        let known =
          List.fold_left (fun acc { payload = Know c; _ } -> max acc c) known inbox
        in
        if known >= n then
          {
            state = Naive_waiting { known; deadline };
            sends = [];
            work = [];
            terminate = true;
            wakeup = None;
          }
        else if r >= deadline then activate r known
        else
          let deadline = if inbox <> [] then r + dgap pid known else deadline in
          {
            state = Naive_waiting { known; deadline };
            sends = [];
            work = [];
            terminate = false;
            wakeup = Some deadline;
          }
  in
  Protocol.Packed { proc = { init; step }; show = show_msg }

let protocol =
  {
    Protocol.name = "C-naive";
    describe = "knowledge spreading without fault detection; Θ(n+t²) worst case";
    make;
  }
