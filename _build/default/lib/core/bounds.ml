module Intmath = Dhw_util.Intmath

(* ---- Theorem 2.3 (Protocol A) ---- *)

let a_work grid =
  let spec = Grid.spec grid in
  let n = Spec.n spec and t = Spec.processes spec in
  let s = Grid.group_size grid in
  let sub = Grid.subchunk_size_max grid in
  (* n necessary + one chunk redone per new group + one subchunk per new
     process (proof of Theorem 2.3). *)
  n + (Grid.n_groups grid * s * sub) + (t * sub)

let a_msgs grid =
  let t = Spec.processes (Grid.spec grid) in
  let s = Grid.group_size grid in
  let num_groups = Grid.n_groups grid in
  let n_sub = Grid.n_subchunks grid in
  let n_fc = Grid.n_chunk_ends grid in
  (* necessary: one partial checkpoint (≤ s msgs) per subchunk, plus per
     full checkpoint 2s msgs per informed group *)
  let necessary = (n_sub * s) + (n_fc * 2 * num_groups * s) in
  (* resent: per new group one full checkpoint + a chunk of partials; per
     new process ≤ 3 own-group broadcasts *)
  let per_group = (2 * num_groups * s) + (s * s) + s in
  let resent = (num_groups * per_group) + (t * 3 * s) in
  necessary + resent

let a_rounds grid =
  Spec.processes (Grid.spec grid) * Grid.max_active_rounds grid

(* ---- Theorem 2.8 (Protocol B) ---- *)

let b_work = a_work

let b_msgs grid =
  let t = Spec.processes (Grid.spec grid) in
  a_msgs grid + (t * Grid.group_size grid)

let b_rounds = Protocol_b.round_bound

(* ---- Theorem 3.8 / Corollary 3.9 (Protocol C) ---- *)

let c_work spec = Spec.n spec + (2 * Spec.processes spec)

let padded_t spec = Intmath.next_power_of_two (Spec.processes spec)

let c_log_term spec =
  let tp = padded_t spec in
  let l = if tp = 1 then 0 else Intmath.ilog2 tp in
  (8 * tp * l) + (2 * tp)

let c_msgs spec = Spec.n spec + c_log_term spec

let c_chunked_msgs spec =
  (* one report per ⌈n/t⌉-unit chunk instead of per unit *)
  (2 * Spec.processes spec) + c_log_term spec

let c_chunked_work spec =
  (* each of the ≤ t takeovers can additionally redo up to one unreported
     chunk of ⌈n/t⌉ units, so the Corollary 3.9 work bound is ~2n + 2t *)
  let n = Spec.n spec and t = Spec.processes spec in
  n + (2 * t) + (t * Intmath.ceil_div n t)

let c_rounds spec ~period =
  let n = Spec.n spec and t = Spec.processes spec in
  let k = float_of_int (Protocol_c.big_k spec ~period) in
  float_of_int t *. k *. float_of_int (n + t) *. (2.0 ** float_of_int (n + t))

(* ---- Theorem 4.1 (Protocol D) ---- *)

let d_work spec = 2 * Spec.n spec
let d_work_revert spec = 4 * Spec.n spec

let d_msgs spec ~f =
  let t = Spec.processes spec in
  ((4 * f) + 2) * t * t

let d_msgs_revert spec ~f =
  let t = Spec.processes spec in
  let half = Intmath.ceil_div t 2 in
  d_msgs spec ~f + (9 * half * Intmath.isqrt_up half)

let d_rounds spec ~f =
  let n = Spec.n spec and t = Spec.processes spec in
  ((f + 1) * Intmath.ceil_div n t) + (4 * f) + 2

let d_rounds_revert spec ~f =
  let n = Spec.n spec and t = Spec.processes spec in
  d_rounds spec ~f + (n * t / 2) + (3 * t * t / 4)
