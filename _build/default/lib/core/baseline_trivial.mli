(** The trivial solution from Section 1: every process performs every unit of
    work, one unit per round, and never communicates. Zero messages, worst
    case [t·n] work, [n] rounds. The work-complexity strawman every other
    protocol is measured against. *)

val protocol : Protocol.t
