module Intmath = Dhw_util.Intmath

let bits_for k = if k <= 1 then 1 else Intmath.ilog2_up (k + 1)

let a_msg_bits grid =
  (* tag (partial/full) + subchunk index + group index *)
  1 + bits_for (Grid.n_subchunks grid) + bits_for (Grid.n_groups grid)

let b_msg_bits grid = 1 + a_msg_bits grid

let c_msg_bits spec ~round_bits =
  let t = Spec.processes spec in
  let tp = Intmath.next_power_of_two t in
  let n_groups = tp - 1 in
  let f_bits = t (* retired set as a bitmap *) in
  let g0 = bits_for (Spec.n spec + 1) + round_bits in
  f_bits + g0 + (n_groups * (bits_for tp + round_bits))

let d_msg_bits spec =
  let n = Spec.n spec and t = Spec.processes spec in
  (* S and T as bitmaps + phase counter + done flag *)
  n + t + bits_for (n + t) + 1

let ba_msg_bits grid ~value_bits = a_msg_bits grid + value_bits

let gmy_msg_bits ~n ~value_bits = n + (value_bits * value_bits)
