(** Uniform interface over the Do-All protocols, hiding each protocol's
    private state and message types so runners, benches and the CLI can treat
    them interchangeably. *)

type packed =
  | Packed : {
      proc : ('s, 'm) Simkit.Types.process;
      show : 'm -> string;
    }
      -> packed

type t = {
  name : string;  (** short identifier, e.g. ["A"], ["B"], ["trivial"] *)
  describe : string;  (** one-line description for --help and tables *)
  make : Spec.t -> packed;  (** instantiate for a problem instance *)
}
