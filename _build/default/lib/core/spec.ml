type t = { n : int; t : int }

let make ~n ~t =
  if n < 1 then invalid_arg "Spec.make: need n >= 1";
  if t < 1 then invalid_arg "Spec.make: need t >= 1";
  { n; t }

let n s = s.n
let processes s = s.t
let pp ppf s = Format.fprintf ppf "n=%d t=%d" s.n s.t
let to_string s = Format.asprintf "%a" pp s
