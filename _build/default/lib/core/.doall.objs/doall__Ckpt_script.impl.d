lib/core/ckpt_script.ml: Fun Grid List Printf Simkit
