lib/core/spec.ml: Format
