lib/core/baseline_trivial.ml: Protocol Simkit Spec
