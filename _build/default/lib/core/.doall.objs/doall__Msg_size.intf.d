lib/core/msg_size.mli: Grid Spec
