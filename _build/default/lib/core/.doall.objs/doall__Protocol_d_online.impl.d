lib/core/protocol_d_online.ml: Array Dhw_util Fun Int List Printf Protocol Set Simkit Spec
