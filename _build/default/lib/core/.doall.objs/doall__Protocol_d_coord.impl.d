lib/core/protocol_d_coord.ml: Array Ckpt_script Dhw_util Fun Grid Int List Printf Protocol Set Simkit Spec
