lib/core/runner.ml: Array Format Printf Protocol Simkit Spec
