lib/core/grid.ml: Dhw_util List Spec
