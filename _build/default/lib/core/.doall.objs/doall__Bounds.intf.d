lib/core/bounds.mli: Grid Spec
