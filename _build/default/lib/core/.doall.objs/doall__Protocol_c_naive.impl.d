lib/core/protocol_c_naive.ml: Dhw_util List Printf Protocol Simkit Spec
