lib/core/protocol_b.ml: Ckpt_script Grid List Protocol Simkit Spec
