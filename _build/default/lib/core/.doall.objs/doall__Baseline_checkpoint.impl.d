lib/core/baseline_checkpoint.ml: Dhw_util Fun List Printf Protocol Simkit Spec
