lib/core/bounds.ml: Dhw_util Grid Protocol_b Protocol_c Spec
