lib/core/protocol_c.mli: Protocol Spec
