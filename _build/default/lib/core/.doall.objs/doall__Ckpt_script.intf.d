lib/core/ckpt_script.mli: Grid Simkit
