lib/core/protocol_d.mli: Protocol
