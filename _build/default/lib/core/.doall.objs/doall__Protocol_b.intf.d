lib/core/protocol_b.mli: Ckpt_script Grid Protocol
