lib/core/protocol_d_online.mli: Protocol
