lib/core/protocol_d_coord.mli: Protocol
