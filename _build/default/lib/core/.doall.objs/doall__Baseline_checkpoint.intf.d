lib/core/baseline_checkpoint.mli: Protocol
