lib/core/runner.mli: Format Protocol Simkit Spec
