lib/core/protocol_c.ml: Array Dhw_util Int List Printf Protocol Set Simkit Spec
