lib/core/baseline_trivial.mli: Protocol
