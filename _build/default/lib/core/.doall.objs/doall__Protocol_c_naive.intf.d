lib/core/protocol_c_naive.mli: Protocol
