lib/core/protocol.ml: Simkit Spec
