lib/core/protocol_a.mli: Ckpt_script Grid Protocol
