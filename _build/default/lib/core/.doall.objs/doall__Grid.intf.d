lib/core/grid.mli: Spec
