lib/core/protocol_a.ml: Ckpt_script Fun Grid List Printf Protocol Simkit
