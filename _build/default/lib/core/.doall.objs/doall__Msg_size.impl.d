lib/core/msg_size.ml: Dhw_util Grid Spec
