lib/core/protocol.mli: Simkit Spec
