open Simkit.Types

type msg = Ckpt of int  (** [Ckpt c]: the first [c] units are done *)

let show_msg (Ckpt c) = Printf.sprintf "ckpt(%d)" c

type action = Do_unit of int | Announce of int

type state =
  | Waiting of { completed : int }  (** highest checkpoint received *)
  | Active of action list

let make ~period spec =
  let n = Spec.n spec in
  let t = Spec.processes spec in
  let n_ckpts = Dhw_util.Intmath.ceil_div n period in
  (* Active lifetime: at most one round per unit plus one per checkpoint. *)
  let lifetime = n + n_ckpts + 2 in
  let deadline j = j * lifetime in
  let others j = List.filter (fun k -> k <> j) (List.init t Fun.id) in
  let script_from completed =
    let rec go c acc =
      if c > n then List.rev acc
      else
        let acc = Do_unit (c - 1) :: acc in
        let acc = if c mod period = 0 || c = n then Announce c :: acc else acc in
        go (c + 1) acc
    in
    go (completed + 1) []
  in
  let run_active pid r script =
    match script with
    | [] ->
        (* Only reachable on takeover with everything already done. *)
        { state = Active []; sends = []; work = []; terminate = true; wakeup = None }
    | Do_unit u :: rest ->
        {
          state = Active rest;
          sends = [];
          work = [ u ];
          terminate = rest = [];
          wakeup = Some (r + 1);
        }
    | Announce c :: rest ->
        {
          state = Active rest;
          sends = List.map (fun dst -> { dst; payload = Ckpt c }) (others pid);
          work = [];
          terminate = rest = [];
          wakeup = Some (r + 1);
        }
  in
  let init pid =
    if pid = 0 then (Active (script_from 0), Some 0)
    else (Waiting { completed = 0 }, Some (deadline pid))
  in
  let step pid r st inbox =
    match st with
    | Active script -> run_active pid r script
    | Waiting { completed } ->
        let completed =
          List.fold_left (fun acc { payload = Ckpt c; _ } -> max acc c) completed inbox
        in
        if completed >= n then
          {
            state = Waiting { completed };
            sends = [];
            work = [];
            terminate = true;
            wakeup = None;
          }
        else if r >= deadline pid then run_active pid r (script_from completed)
        else
          {
            state = Waiting { completed };
            sends = [];
            work = [];
            terminate = false;
            wakeup = Some (deadline pid);
          }
  in
  Protocol.Packed { proc = { init; step }; show = show_msg }

let protocol ~period =
  if period < 1 then invalid_arg "Baseline_checkpoint.protocol: period >= 1";
  {
    Protocol.name = Printf.sprintf "checkpoint/%d" period;
    describe =
      "single active process, checkpoint broadcast to all after every period units";
    make = make ~period;
  }
