(** The paper's theorem bounds, as executable formulas.

    Each function computes the guarantee the corresponding theorem states,
    generalized to arbitrary instances through {!Grid} (on perfect-square,
    divisible instances the Protocol A/B formulas reduce exactly to the
    paper's [3n], [9t√t], [10t√t], [nt + 3t²] and [3n + 8t]). The test
    suite asserts every execution stays within these; the benches print
    measured-vs-bound ratios. *)

(** {1 Theorem 2.3 — Protocol A} *)

val a_work : Grid.t -> int
(** [n + (#groups)·(chunk size) + t·(subchunk size)] — paper: [3n]. *)

val a_msgs : Grid.t -> int
(** Necessary + resent checkpoint messages — paper: [9t√t]. *)

val a_rounds : Grid.t -> int
(** [t · L] where [L] is the active-lifetime budget — paper: [nt + 3t²]. *)

(** {1 Theorem 2.8 — Protocol B} *)

val b_work : Grid.t -> int
(** Same work bound as A — paper: [3n]. *)

val b_msgs : Grid.t -> int
(** A's message bound plus [t·s] go-ahead probes — paper: [10t√t]. *)

val b_rounds : Grid.t -> int
(** [max useful rounds + TT(t-1, 0)] — paper: [3n + 8t]. *)

(** {1 Theorem 3.8 / Corollary 3.9 — Protocol C} *)

val c_work : Spec.t -> int
(** [n + 2t]. *)

val c_msgs : Spec.t -> int
(** [n + 8 t' log t' + 2t'] with [t'] the power-of-two padding — paper:
    [n + 8t log t]. *)

val c_chunked_msgs : Spec.t -> int
(** Corollary 3.9: the [n] term replaced by [t] reports. *)

val c_chunked_work : Spec.t -> int
(** Corollary 3.9 work: [n + 2t + t·⌈n/t⌉] — each takeover can redo one
    unreported chunk, still [O(n + t)]. *)

val c_rounds : Spec.t -> period:int -> float
(** [t·K·(n+t)·2^(n+t)], returned as a float because it overflows 63 bits
    long before the protocol's own instance cap. *)

(** {1 Theorem 4.1 — Protocol D} *)

val d_work : Spec.t -> int
(** [2n] when no phase loses more than half its live processes. *)

val d_work_revert : Spec.t -> int
(** [4n] in the catastrophic case (part 2(a)). *)

val d_msgs : Spec.t -> f:int -> int
(** [(4f+2)·t²]. *)

val d_msgs_revert : Spec.t -> f:int -> int
(** part 2(b): [(4f+2)t² + 9·(t/2)·√(t/2)]. *)

val d_rounds : Spec.t -> f:int -> int
(** [(f+1)·⌈n/t⌉ + 4f + 2]. *)

val d_rounds_revert : Spec.t -> f:int -> int
(** part 2(c): adds [nt/2 + 3t²/4]. *)
