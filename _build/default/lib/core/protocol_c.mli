(** Protocol C (Section 3, Figure 3): work-optimal Do-All with only
    [O(t log t)] messages — at the price of worst-case time exponential in
    [n + t].

    Knowledge of performed work and detected failures is spread as uniformly
    as possible: the active process tells each new fact to the process it
    considers least knowledgeable. When the active process fails, the {e
    most} knowledgeable survivor takes over — deadlines exponentially
    separated by {e reduced view} (units known done + failures known)
    guarantee that exactly one process is active at a time without any
    communication.

    To keep takeover cheap, failure detection is treated as work in its own
    right: processing is divided into [log t] levels; in level [h] the
    processes are partitioned into groups of size [2^(log t - h + 1)], and a
    newly active process polls each of its groups top-down ("Are you
    alive?"), reporting each detected failure one level up, before starting
    real work. Real work at level 0 is reported into the single level-1
    group after every [report_period] completed units: [1] gives Protocol C
    proper (Theorem 3.8: ≤ n+2t real work, ≤ n + 8t log t messages);
    [⌈n/t⌉] gives the Corollary 3.9 variant with [O(t log t)] messages.

    Instance-size limit: the deadlines reach [K(t)(n+t)2^(n+t-1)] rounds, so
    [n + t ≲ 45] is required for exact 63-bit round arithmetic; {!make}
    raises [Failure] otherwise (see DESIGN.md). Non-power-of-two [t] is
    padded internally with virtual, never-polled processes. *)

type view
(** A process's knowledge: retired set [F], work pointer and per-group
    pointers/rounds (the triple [(F_i, point_i, round_i)]). *)

type msg = Ordinary of view | Are_you_alive | Alive

val show_msg : msg -> string

val protocol : Protocol.t
(** Protocol C proper ([report_period = 1]). *)

val protocol_chunked : Protocol.t
(** The Corollary 3.9 variant: report after every [⌈n/t⌉] units. *)

val protocol_with_period : period:(Spec.t -> int) -> name:string -> Protocol.t

(** {1 Deadline functions} (exposed for tests and benches) *)

val big_k : Spec.t -> period:int -> int
(** The constant [K]: an upper bound on the rounds until every non-retired
    process has heard from a newly active process. [5t + 2 log t] for
    [period = 1]. *)

val deadline_gap : Spec.t -> period:int -> pid:int -> m:int -> int
(** [D(i, m)]: rounds a process with reduced view [m] waits after its last
    ordinary message before becoming active. @raise Failure on 63-bit
    overflow (instance too large). *)

(** {1 Internals exposed for property testing}

    View merging is correctness-critical (Lemma 3.4's knowledge ordering
    rests on it), so its algebra is exported: merge must be a join —
    idempotent, commutative up to tie-breaks, monotone, and never
    information-losing. *)
module Internal : sig
  type raw_view = {
    f : int list;  (** retired pids, sorted *)
    g0_point : int;
    g0_round : int;
    group_rounds : (int * int) list;  (** (gid, round) for set entries *)
  }

  val view_of_raw : Spec.t -> raw_view -> view
  val raw_of_view : view -> raw_view
  val merge : view -> view -> view
  val reduced_view : view -> int

  val n_group_ids : Spec.t -> int
  (** Number of group ids in the padded topology, [t' - 1]. *)
end
