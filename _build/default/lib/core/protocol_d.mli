(** Protocol D (Section 4, Figure 4): the time-optimal algorithm.

    All processes work in parallel: the outstanding units are split evenly
    among the processes thought correct, a work phase of [⌈|S|/|T|⌉] rounds
    is followed by an agreement phase (Eventual Byzantine Agreement in the
    crash model, à la Dolev–Reischuk–Strong) in which the survivors agree on
    the new outstanding set [S] and live set [T], and the loop repeats until
    [S] is empty. If an agreement phase reveals that more than half of the
    processes alive at the previous phase have failed, the survivors revert
    to (an embedded copy of) Protocol A on the remaining work.

    Guarantees (Theorem 4.1): with [f] failures and no phase losing more
    than half its processes — ≤ 2n work, ≤ (4f+2)t² messages, all retired by
    round [(f+1)n/t + 4f + 2]; in the failure-free case [n/t + 2] rounds and
    [2t²] messages. With a catastrophic phase, Protocol A's bounds are added
    on the remaining work.

    Round accounting note (DESIGN.md): the paper's synchronous model
    delivers a message in the round it is sent; this kernel delivers in the
    next round. The first agreement broadcast is therefore piggybacked on
    the last work-phase round (the model allows one unit of work and one
    round of communication per time unit), and each agreement iteration
    processes the previous round's inbox before broadcasting. Failure-free
    executions take [⌈n/t⌉ + 1] rounds here versus the paper's [n/t + 2]. *)

type msg

val show_msg : msg -> string

val protocol : Protocol.t

val alpha_default : float
(** The "half" in "more than half the processes failed": the revert
    threshold [α = 0.5] used by {!protocol}. *)

val protocol_with_alpha : alpha:float -> name:string -> Protocol.t
(** Generalized revert threshold (the remark inside Theorem 4.1's proof):
    revert when [|T'| > |T| / α]... specifically when the surviving fraction
    drops below [α]. Work is then bounded by [n/(1-α)] per the same
    induction. @raise Invalid_argument unless [0 < alpha < 1]. *)
