(** Asynchronous event-driven executor with a failure-detection service
    (the "completely asynchronous system equipped with a failure detection
    mechanism" of Section 2.1 and Chandra–Toueg [7]).

    Differences from the synchronous kernel:
    - there are no rounds; each message is delivered after an
      adversary-chosen delay in [1, max_delay] ticks;
    - processes are reactive: they act on message delivery, on failure-
      detector notifications, and on self-scheduled continuations (used to
      model "one unit of work per time unit");
    - the failure-detection service notifies every live process of each
      retirement (crash or termination) after an adversary-chosen lag in
      [1, max_lag] ticks. It is {e sound} (never reports a non-retired
      process) and {e complete} (every retirement is eventually reported to
      every live process) — exactly the two properties the asynchronous
      Protocol A needs. *)

type time = int

type 'm aevent =
  | Started  (** delivered once, at the process's start tick *)
  | Got of { src : Simkit.Types.pid; payload : 'm }
  | Retired_notice of Simkit.Types.pid
      (** failure-detector notification: that process has crashed or
          terminated *)
  | Continue  (** the continuation the process scheduled *)

type ('s, 'm) aoutcome = {
  state : 's;
  sends : (Simkit.Types.pid * 'm) list;
  work : int list;
  terminate : bool;
  continue_after : int option;
      (** schedule a [Continue] this many ticks from now (>= 1) *)
}

type ('s, 'm) aproc = {
  a_init : Simkit.Types.pid -> 's;
  a_handle : Simkit.Types.pid -> time -> 's -> 'm aevent -> ('s, 'm) aoutcome;
}

type config = {
  n_processes : int;
  n_units : int;
  crash_at : (Simkit.Types.pid * time) list;  (** silent crashes *)
  max_delay : int;  (** message delays drawn from [1, max_delay] *)
  max_lag : int;  (** detector lags drawn from [1, max_lag] *)
  seed : int64;  (** drives the delay/lag adversary *)
  max_ticks : time;
  false_suspicions : (Simkit.Types.pid * Simkit.Types.pid * time) list;
      (** (observer, suspect, time): deliver a [Retired_notice suspect] to
          [observer] even though the suspect is alive — deliberately breaks
          the detector's soundness, to demonstrate why Section 2.1 demands
          it ("the mechanism must be sound"). With false suspicions two
          processes can be active at once; idempotence keeps the run
          correct, but work and messages are duplicated. *)
}

val config :
  ?crash_at:(Simkit.Types.pid * time) list ->
  ?max_delay:int ->
  ?max_lag:int ->
  ?seed:int64 ->
  ?max_ticks:time ->
  ?false_suspicions:(Simkit.Types.pid * Simkit.Types.pid * time) list ->
  n_processes:int ->
  n_units:int ->
  unit ->
  config

type result = {
  metrics : Simkit.Metrics.t;  (** rounds = final tick *)
  statuses : Simkit.Types.status array;
  completed : bool;  (** all processes retired before [max_ticks] *)
}

val run : config -> ('s, 'm) aproc -> result
