lib/asim/event_sim.ml: Array Dhw_util Int List Map Option Simkit
