lib/asim/async_protocol_a.mli: Doall Event_sim Simkit
