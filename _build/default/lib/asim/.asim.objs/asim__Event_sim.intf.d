lib/asim/event_sim.mli: Simkit
