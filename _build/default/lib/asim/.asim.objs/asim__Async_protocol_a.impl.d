lib/asim/async_protocol_a.ml: Ckpt_script Doall Event_sim Fun Grid Int List Set Simkit Spec
