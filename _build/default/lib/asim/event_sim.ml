open Simkit.Types
module Prng = Dhw_util.Prng
module TMap = Map.Make (Int)

type time = int

type 'm aevent =
  | Started
  | Got of { src : pid; payload : 'm }
  | Retired_notice of pid
  | Continue

type ('s, 'm) aoutcome = {
  state : 's;
  sends : (pid * 'm) list;
  work : int list;
  terminate : bool;
  continue_after : int option;
}

type ('s, 'm) aproc = {
  a_init : pid -> 's;
  a_handle : pid -> time -> 's -> 'm aevent -> ('s, 'm) aoutcome;
}

type config = {
  n_processes : int;
  n_units : int;
  crash_at : (pid * time) list;
  max_delay : int;
  max_lag : int;
  seed : int64;
  max_ticks : time;
  false_suspicions : (pid * pid * time) list;
}

let config ?(crash_at = []) ?(max_delay = 5) ?(max_lag = 8) ?(seed = 1L)
    ?(max_ticks = 10_000_000) ?(false_suspicions = []) ~n_processes ~n_units () =
  if max_delay < 1 || max_lag < 1 then invalid_arg "Event_sim.config";
  { n_processes; n_units; crash_at; max_delay; max_lag; seed; max_ticks;
    false_suspicions }

type result = {
  metrics : Simkit.Metrics.t;
  statuses : status array;
  completed : bool;
}

(* Internal queue items. [Crash_item] realises the crash schedule; the rest
   are process-visible events. *)
type 'm item =
  | Ev of { dst : pid; ev : 'm aevent }
  | Crash_item of pid

let run cfg proc =
  let t = cfg.n_processes in
  let metrics = Simkit.Metrics.create ~n_processes:t ~n_units:cfg.n_units in
  let statuses = Array.make t Running in
  let states = Array.init t proc.a_init in
  let g = Prng.create cfg.seed in
  let queue : 'm item list TMap.t ref = ref TMap.empty in
  let push at item =
    let existing = Option.value ~default:[] (TMap.find_opt at !queue) in
    queue := TMap.add at (item :: existing) !queue
  in
  (* Crash schedule first so a crash at tick τ precedes deliveries at τ. *)
  List.iter (fun (pid, at) -> push at (Crash_item pid)) cfg.crash_at;
  (* Injected detector unsoundness: a notice about a live process. *)
  List.iter
    (fun (observer, suspect, at) ->
      push at (Ev { dst = observer; ev = Retired_notice suspect }))
    cfg.false_suspicions;
  for pid = 0 to t - 1 do
    push 0 (Ev { dst = pid; ev = Started })
  done;
  let alive pid = statuses.(pid) = Running in
  let retire_notify who now =
    (* Failure-detection service: sound by construction (only called on
       actual retirement), complete because every live process gets a
       notification after a bounded lag. *)
    for obs = 0 to t - 1 do
      if obs <> who && alive obs then
        push (now + 1 + Prng.int g cfg.max_lag) (Ev { dst = obs; ev = Retired_notice who })
    done
  in
  let handle now dst ev =
    if alive dst then begin
      let o = proc.a_handle dst now states.(dst) ev in
      states.(dst) <- o.state;
      List.iter (fun u -> Simkit.Metrics.record_work metrics dst u) o.work;
      List.iter
        (fun (to_, payload) ->
          Simkit.Metrics.record_send metrics dst;
          if to_ >= 0 && to_ < t then
            push (now + 1 + Prng.int g cfg.max_delay)
              (Ev { dst = to_; ev = Got { src = dst; payload } }))
        o.sends;
      Simkit.Metrics.record_round metrics now;
      if o.terminate then begin
        statuses.(dst) <- Terminated now;
        Simkit.Metrics.record_terminate metrics dst now;
        retire_notify dst now
      end
      else
        match o.continue_after with
        | Some d when d >= 1 -> push (now + d) (Ev { dst; ev = Continue })
        | Some _ -> invalid_arg "Event_sim: continue_after must be >= 1"
        | None -> ()
    end
  in
  let rec loop () =
    match TMap.min_binding_opt !queue with
    | None -> ()
    | Some (now, items) when now <= cfg.max_ticks ->
        queue := TMap.remove now !queue;
        (* items were accumulated in reverse insertion order *)
        List.iter
          (fun item ->
            match item with
            | Crash_item pid ->
                if alive pid then begin
                  statuses.(pid) <- Crashed now;
                  Simkit.Metrics.record_crash metrics pid now;
                  retire_notify pid now
                end
            | Ev { dst; ev } -> handle now dst ev)
          (List.rev items);
        loop ()
    | Some _ -> ()
  in
  loop ();
  let completed = Array.for_all is_retired statuses in
  { metrics; statuses; completed }
