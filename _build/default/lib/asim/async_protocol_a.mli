(** The asynchronous variant of Protocol A (the Section 2.1 remark): instead
    of waiting until round [DD(j)], process [j] takes over as soon as the
    failure-detection service has reported every process [< j] retired.

    Soundness of the detector gives at-most-one-active; completeness gives
    liveness. Work and message counts obey Theorem 2.3's bounds — time is
    whatever the delay adversary makes it. *)

type msg

val show_msg : msg -> string

val run :
  ?crash_at:(Simkit.Types.pid * Event_sim.time) list ->
  ?max_delay:int ->
  ?max_lag:int ->
  ?seed:int64 ->
  ?false_suspicions:(Simkit.Types.pid * Simkit.Types.pid * Event_sim.time) list ->
  Doall.Spec.t ->
  Event_sim.result
(** Build and execute the asynchronous Protocol A on an instance. With
    [false_suspicions] the detector's soundness is deliberately violated:
    the falsely-convinced process may become active alongside the real one,
    so work is duplicated — but since the work is idempotent, every unit is
    still performed (the precise reason Section 2.1 requires soundness is
    efficiency, not safety). *)
