lib/util/prng.mli:
