lib/util/intmath.mli:
