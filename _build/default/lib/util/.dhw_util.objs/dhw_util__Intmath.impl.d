lib/util/intmath.ml:
