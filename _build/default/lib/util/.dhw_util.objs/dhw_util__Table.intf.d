lib/util/table.mli:
