(** Exact integer arithmetic helpers used throughout the protocols.

    The paper's deadline and group-size formulas are stated over
    [n/t], [√t] and [log t]; all of them must be computed exactly (no float
    round-off) because they feed safety-critical timeouts. *)

val isqrt : int -> int
(** [isqrt n] is [⌊√n⌋]. @raise Invalid_argument on negative input. *)

val isqrt_up : int -> int
(** [isqrt_up n] is [⌈√n⌉]. *)

val is_perfect_square : int -> bool

val ilog2 : int -> int
(** [ilog2 n] is [⌊log₂ n⌋]. @raise Invalid_argument if [n <= 0]. *)

val ilog2_up : int -> int
(** [ilog2_up n] is [⌈log₂ n⌉]. *)

val is_power_of_two : int -> bool

val next_power_of_two : int -> int
(** Smallest power of two [>= n] (for [n >= 1]). *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is [⌈a/b⌉] for [a >= 0, b > 0]. *)

val pow : int -> int -> int
(** [pow base e] with overflow check. @raise Invalid_argument on negative
    exponent, @raise Failure "Intmath.pow: overflow" if the result exceeds
    [max_int]. *)

val checked_mul : int -> int -> int
(** Multiplication raising [Failure] on signed overflow (non-negative args). *)

val checked_add : int -> int -> int
(** Addition raising [Failure] on signed overflow (non-negative args). *)
