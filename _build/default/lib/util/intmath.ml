let isqrt n =
  if n < 0 then invalid_arg "Intmath.isqrt: negative";
  if n < 2 then n
  else begin
    (* Newton iteration on integers; converges from above. *)
    let x = ref (int_of_float (sqrt (float_of_int n))) in
    (* Correct float round-off in both directions. *)
    while !x * !x > n do
      decr x
    done;
    while (!x + 1) * (!x + 1) <= n do
      incr x
    done;
    !x
  end

let is_perfect_square n =
  n >= 0
  &&
  let r = isqrt n in
  r * r = n

let isqrt_up n =
  let r = isqrt n in
  if r * r = n then r else r + 1

let ilog2 n =
  if n <= 0 then invalid_arg "Intmath.ilog2: nonpositive";
  let rec go acc n = if n = 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let ilog2_up n =
  let l = ilog2 n in
  if is_power_of_two n then l else l + 1

let next_power_of_two n =
  if n <= 1 then 1 else 1 lsl ilog2_up n

let ceil_div a b =
  if a < 0 || b <= 0 then invalid_arg "Intmath.ceil_div";
  (a + b - 1) / b

let checked_mul a b =
  if a < 0 || b < 0 then invalid_arg "Intmath.checked_mul: negative";
  if a = 0 || b = 0 then 0
  else if a > max_int / b then failwith "Intmath: overflow"
  else a * b

let checked_add a b =
  if a < 0 || b < 0 then invalid_arg "Intmath.checked_add: negative";
  if a > max_int - b then failwith "Intmath: overflow" else a + b

let pow base e =
  if e < 0 then invalid_arg "Intmath.pow: negative exponent";
  let rec go acc base e =
    if e = 0 then acc
    else if e land 1 = 1 then go (checked_mul acc base) base (e - 1)
    else go acc (checked_mul base base) (e / 2)
  in
  go 1 base e
