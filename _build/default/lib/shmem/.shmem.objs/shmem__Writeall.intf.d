lib/shmem/writeall.mli: Simkit Skernel
