lib/shmem/skernel.ml: Array List Option Simkit
