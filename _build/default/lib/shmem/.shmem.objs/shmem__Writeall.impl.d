lib/shmem/writeall.ml: Dhw_util Simkit Skernel
