lib/shmem/skernel.mli: Simkit
