
type outcome = { result : Skernel.result; effort : int }

let finish (result : Skernel.result) =
  {
    result;
    effort = Simkit.Metrics.work result.metrics + result.reads + result.writes;
  }

let work_complete o = Simkit.Metrics.all_units_done o.result.metrics

(* ------------------------------------------------------------------ *)
(* The effort-optimal sequential algorithm: cell 0 holds the number of
   completed units; the active process writes it after every unit. *)

type ckpt_state =
  | Wait
  | Active_work of int  (* next 1-based unit to perform *)
  | Active_write of int  (* unit just performed, about to be recorded *)

let checkpointed ?crash_at ~n ~t () =
  let lifetime = (2 * n) + 4 in
  let deadline j = j * lifetime in
  let s_init pid =
    if pid = 0 then (Active_work 1, Some 0) else (Wait, Some (deadline pid))
  in
  let s_step _pid r st h =
    match st with
    | Wait ->
        let progress = Skernel.read h 0 in
        if progress >= n then
          { Skernel.state = Wait; work = []; terminate = true; wakeup = None }
        else
          (* take over: perform the next unit in the same round (one memory
             op plus one unit of work per time step) *)
          {
            Skernel.state = Active_write (progress + 1);
            work = [ progress ];
            terminate = false;
            wakeup = Some (r + 1);
          }
    | Active_work w ->
        if w > n then
          { Skernel.state = st; work = []; terminate = true; wakeup = None }
        else
          {
            Skernel.state = Active_write w;
            work = [ w - 1 ];
            terminate = false;
            wakeup = Some (r + 1);
          }
    | Active_write w ->
        Skernel.write h 0 w;
        {
          Skernel.state = Active_work (w + 1);
          work = [];
          terminate = w = n;
          wakeup = (if w = n then None else Some (r + 1));
        }
  in
  finish
    (Skernel.run ?crash_at ~n_cells:1 ~n_processes:t ~n_units:n
       { s_init; s_step })

(* ------------------------------------------------------------------ *)
(* A simple parallel Write-All sweep: cell i is unit i's done flag; each
   process scans cyclically from its own offset and performs whatever it
   finds undone, terminating after a full pass of done cells. *)

type scan_state =
  | Scan of { pos : int; streak : int }
  | Mark of int  (* unit just performed, flag write pending *)

let parallel_scan ?crash_at ~n ~t () =
  let offset pid = pid * Dhw_util.Intmath.ceil_div n t mod n in
  let s_init pid = (Scan { pos = offset pid; streak = 0 }, Some 0) in
  let s_step _pid r st h =
    match st with
    | Scan { pos; streak } ->
        if Skernel.read h pos = 0 then
          {
            Skernel.state = Mark pos;
            work = [ pos ];
            terminate = false;
            wakeup = Some (r + 1);
          }
        else if streak + 1 >= n then
          { Skernel.state = st; work = []; terminate = true; wakeup = None }
        else
          {
            Skernel.state = Scan { pos = (pos + 1) mod n; streak = streak + 1 };
            work = [];
            terminate = false;
            wakeup = Some (r + 1);
          }
    | Mark pos ->
        Skernel.write h pos 1;
        {
          Skernel.state = Scan { pos = (pos + 1) mod n; streak = 0 };
          work = [];
          terminate = false;
          wakeup = Some (r + 1);
        }
  in
  finish
    (Skernel.run ?crash_at ~n_cells:n ~n_processes:t ~n_units:n
       { s_init; s_step })
