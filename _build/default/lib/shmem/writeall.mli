(** Shared-memory Do-All / Write-All algorithms for the Section 1.1
    comparison.

    {!checkpointed} is the "straightforward algorithm with optimal effort
    O(n + t), running in time O(nt)" the paper describes: a single active
    process performs the work, writing its progress to a shared cell after
    every unit; successors take over on deadline expiry after one read.
    Effort = n work + n writes + ≤t reads ∈ O(n + t); but the
    available-processor-steps bill is Θ(nt²) because idle waiters are
    charged — precisely the measure disagreement Section 1.1 discusses.

    {!parallel_scan} is a simple Write-All style parallel algorithm: every
    process sweeps the done-array from its own offset, performing whatever it
    finds undone. Time is O(n/t) without failures and it is APS-frugal, but
    effort degrades to Θ(tn) in the worst case (everyone re-reads every
    cell) — the opposite trade-off. *)

type outcome = {
  result : Skernel.result;
  effort : int;  (** work + reads + writes *)
}

val checkpointed :
  ?crash_at:(Simkit.Types.pid * int) list -> n:int -> t:int -> unit -> outcome

val parallel_scan :
  ?crash_at:(Simkit.Types.pid * int) list -> n:int -> t:int -> unit -> outcome

val work_complete : outcome -> bool
