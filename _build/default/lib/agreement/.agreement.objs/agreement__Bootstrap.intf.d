lib/agreement/bootstrap.mli: Crash_ba Doall Simkit
