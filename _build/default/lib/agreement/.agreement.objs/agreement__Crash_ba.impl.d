lib/agreement/crash_ba.ml: Array Dhw_util Doall List Option Protocol_a Protocol_b Protocol_c Runner Simkit Spec String
