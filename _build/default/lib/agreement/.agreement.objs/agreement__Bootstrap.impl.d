lib/agreement/bootstrap.ml: Crash_ba Doall List Simkit
