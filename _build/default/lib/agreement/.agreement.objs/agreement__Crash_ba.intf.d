lib/agreement/crash_ba.mli: Simkit
