(** The common-knowledge bootstrap of Section 1: the protocols assume the
    work pool is common knowledge at round 0; when instead only one process
    knows the pool, it acts as general and the system runs {e twice} — first
    Byzantine agreement on the pool description, then the chosen work
    protocol on the pool itself. "If n, the amount of actual work, is Ω(t),
    then the overall cost at most doubles."

    The crash schedule is given in absolute rounds spanning both stages:
    crashes that land during the agreement stage hit it, the rest are
    shifted into the work stage. *)

type outcome = {
  ba : Crash_ba.outcome;  (** stage 1: agreement on the pool description *)
  work : Doall.Runner.report;  (** stage 2: the actual work *)
  total_messages : int;
  total_work : int;
  total_rounds : int;
  ok : bool;
      (** stage-1 agreement+validity and stage-2 completion both hold *)
}

val run :
  n:int ->
  t:int ->
  ?crash_at:(Simkit.Types.pid * int) list ->
  Crash_ba.work_protocol ->
  outcome
(** [run ~n ~t proto]: [t] processes, pool of [n] units initially known only
    to process 0, both stages driven by [proto] (with failure bound
    [t - 1], i.e. senders are all [t] processes).

    @raise Invalid_argument if [n < 1] or [t < 1]. *)
