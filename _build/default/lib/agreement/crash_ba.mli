(** Byzantine agreement (crash-failure model) from work protocols, Section 5.

    The construction: the general broadcasts its value to the [t+1] {e
    senders} (processes [0..t]); the senders then run a Do-All protocol in
    which work unit [i] means "send the general's value to process [i]".
    Every process decides, at a predetermined time, on the last value it was
    told (default 0). With Protocol C, which can repeat a unit with a stale
    value, every protocol message additionally carries the sender's current
    value; with Protocols A and B the checkpoint messages deliberately do
    {e not} carry values (the correctness argument depends on it).

    Resulting message complexity: [O(n + t√t)] with A/B (matching Bracha's
    nonconstructive bound, constructively), [O(n + t log t)] with C.

    Implementation: the sender work-run executes on the synchronous kernel
    and its trace is then replayed to track value adoption round by round —
    a performed unit [u] at round [r] delivers the performer's current value
    to process [u] at round [r+1]; for Protocol C every traced message also
    delivers the sender's value. Crash schedules must be silent crashes
    (crash-at-round), which is what the Section 5 analysis considers. *)

type work_protocol = A | B | C | C_chunked

type outcome = {
  decisions : int array;  (** final value per process; [-1] for crashed *)
  correct : bool array;  (** never crashed *)
  agreement : bool;  (** all correct processes decided the same value *)
  validity : bool;
      (** general correct implies every correct process decided its value
          (vacuously true when the general crashes) *)
  messages : int;
      (** stage-1 informs + sender-protocol messages + the [n] unit-informs *)
  work_messages : int;  (** the sender protocol's own messages *)
  rounds : int;
  sender_work : int;  (** units performed by the senders, with multiplicity *)
}

val run :
  n:int ->
  t_bound:int ->
  value:int ->
  ?crash_at:(Simkit.Types.pid * int) list ->
  ?general_cut:int ->
  work_protocol ->
  outcome
(** [run ~n ~t_bound ~value ?crash_at ?general_cut proto] — [n] processes,
    at most [t_bound] may crash, senders are [0..t_bound]. [crash_at] lists
    silent crashes in work-run rounds (the general's own entry should be
    [(0, 0)] when [general_cut] is used). [general_cut = Some k] makes the
    general crash during its stage-1 broadcast after informing senders
    [0..k-1].

    @raise Invalid_argument if [t_bound + 1 > n] or [t_bound < 0]. *)

(** {1 Comparison lines for bench E6} *)

val bracha_msgs : n:int -> t:int -> int
(** [n + t√t], the (nonconstructive) bound of Bracha 1984. *)

val gmy_msgs : n:int -> int
(** [O(n)] — Galil–Mayer–Yung 1995, plotted as [4n]. *)
