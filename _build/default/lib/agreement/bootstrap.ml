type outcome = {
  ba : Crash_ba.outcome;
  work : Doall.Runner.report;
  total_messages : int;
  total_work : int;
  total_rounds : int;
  ok : bool;
}

let protocol_of = function
  | Crash_ba.A -> Doall.Protocol_a.protocol
  | Crash_ba.B -> Doall.Protocol_b.protocol
  | Crash_ba.C -> Doall.Protocol_c.protocol
  | Crash_ba.C_chunked -> Doall.Protocol_c.protocol_chunked

let run ~n ~t ?(crash_at = []) proto =
  if n < 1 || t < 1 then invalid_arg "Bootstrap.run";
  (* Stage 1: agree on the pool description. The "value" stands for the pool
     id; informing process i is work unit i, so the BA instance has n = t
     (everyone must learn the pool) and the senders are all t processes. *)
  let ba =
    Crash_ba.run ~n:t ~t_bound:(t - 1) ~value:1 ~crash_at proto
  in
  (* Stage 2: the pool itself, by whoever survived stage 1. Crashes beyond
     the agreement stage are shifted into work-protocol time. *)
  let stage2_crashes =
    List.filter_map
      (fun (pid, r) -> if r >= ba.rounds then Some (pid, r - ba.rounds) else None)
      crash_at
    @ (* processes already dead keep being dead *)
    List.filter_map
      (fun (pid, r) -> if r < ba.rounds then Some (pid, 0) else None)
      crash_at
  in
  let spec = Doall.Spec.make ~n ~t in
  let work =
    Doall.Runner.run
      ~fault:(Simkit.Fault.crash_silently_at stage2_crashes)
      spec (protocol_of proto)
  in
  let total_messages = ba.messages + Simkit.Metrics.messages work.metrics in
  let total_work = ba.sender_work + Simkit.Metrics.work work.metrics in
  let total_rounds = ba.rounds + Simkit.Metrics.rounds work.metrics in
  {
    ba;
    work;
    total_messages;
    total_work;
    total_rounds;
    ok = ba.agreement && ba.validity && Doall.Runner.correct work;
  }
