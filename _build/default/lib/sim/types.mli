(** Core vocabulary of the synchronous crash-fault message-passing model
    (Section 2 of the paper).

    Time proceeds in rounds. In one round a process may perform local
    computation, perform one unit of work, and send/receive messages: a
    message sent in round [r] is received at the start of round [r+1].
    Processes fail only by crashing; a process that crashes while
    broadcasting delivers its messages to an adversary-chosen subset of the
    recipients. *)

type pid = int
(** Process identifier, [0 .. t-1]. *)

type round = int
(** Round counter. 63-bit; Protocol C's deadlines approach [2^(n+t)], so
    callers bound [n + t] accordingly (see DESIGN.md). *)

type 'm send = { dst : pid; payload : 'm }
(** An outgoing message for the current round. *)

type 'm envelope = { src : pid; sent_at : round; payload : 'm }
(** A received message: sent by [src] in round [sent_at], delivered in round
    [sent_at + 1]. *)

type ('s, 'm) outcome = {
  state : 's;  (** post-round protocol state *)
  sends : 'm send list;
      (** messages emitted this round, in order — the order matters because a
          crashing sender delivers a prefix/subset chosen by the adversary *)
  work : int list;
      (** work-unit ids performed this round (the model allows one per round;
          the kernel does not enforce this, protocols do) *)
  terminate : bool;  (** retire (successfully) at the end of this round *)
  wakeup : round option;
      (** next round at which the process must be stepped even if it receives
          no message; must be strictly greater than the current round.
          [None] means: step me again only upon message receipt. *)
}

type ('s, 'm) process = {
  init : pid -> 's * round option;
      (** initial state and first wakeup round (typically [Some 0] for the
          initially active process, a deadline for the others). *)
  step : pid -> round -> 's -> 'm envelope list -> ('s, 'm) outcome;
      (** one synchronous round: current state and this round's inbox to
          outcome. Must be pure up to its own state. *)
}

type status =
  | Running  (** still alive and not terminated *)
  | Terminated of round  (** retired successfully at the end of this round *)
  | Crashed of round  (** failed during this round *)

val is_retired : status -> bool
val status_to_string : status -> string
