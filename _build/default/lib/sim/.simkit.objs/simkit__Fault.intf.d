lib/sim/fault.mli: Types
