lib/sim/fault.ml: Dhw_util Hashtbl List Types
