lib/sim/types.mli:
