lib/sim/audit.mli: Format Trace Types
