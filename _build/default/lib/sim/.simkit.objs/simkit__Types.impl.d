lib/sim/types.ml: Printf
