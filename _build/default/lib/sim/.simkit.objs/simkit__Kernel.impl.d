lib/sim/kernel.ml: Array Fault List Metrics Printf Trace Types
