lib/sim/metrics.mli: Format Types
