lib/sim/kernel.mli: Fault Metrics Trace Types
