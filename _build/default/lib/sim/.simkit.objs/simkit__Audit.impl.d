lib/sim/audit.ml: Format Hashtbl List Trace Types
