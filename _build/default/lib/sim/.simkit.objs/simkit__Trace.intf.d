lib/sim/trace.mli: Format Types
