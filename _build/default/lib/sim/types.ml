type pid = int
type round = int
type 'm send = { dst : pid; payload : 'm }
type 'm envelope = { src : pid; sent_at : round; payload : 'm }

type ('s, 'm) outcome = {
  state : 's;
  sends : 'm send list;
  work : int list;
  terminate : bool;
  wakeup : round option;
}

type ('s, 'm) process = {
  init : pid -> 's * round option;
  step : pid -> round -> 's -> 'm envelope list -> ('s, 'm) outcome;
}

type status = Running | Terminated of round | Crashed of round

let is_retired = function Running -> false | Terminated _ | Crashed _ -> true

let status_to_string = function
  | Running -> "running"
  | Terminated r -> Printf.sprintf "terminated@%d" r
  | Crashed r -> Printf.sprintf "crashed@%d" r
